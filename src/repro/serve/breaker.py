"""Circuit breaker for the serve tier's fault domains.

A :class:`CircuitBreaker` tracks the recent outcomes of one dependency
(the reordering compute pipeline, the on-disk permutation store) and
cuts traffic to it once it is demonstrably sick, instead of letting
every request pay the full failure latency and pile more load onto a
struggling component.  Standard three-state machine:

* **closed** — normal operation.  Outcomes are recorded into a rolling
  window; when the window holds at least ``min_failures`` failures AND
  the failure rate reaches ``failure_rate``, the breaker *opens*.
* **open** — calls are rejected immediately (:meth:`acquire` returns
  ``False``) until ``recovery_seconds`` have elapsed, at which point
  the breaker moves to *half-open*.
* **half-open** — up to ``probe_budget`` concurrent *probe* calls are
  admitted.  ``probe_successes`` successful probes close the breaker
  (window reset); any probe failure re-opens it and restarts the
  recovery clock.

The breaker never interprets exceptions itself: callers classify
(client errors like :class:`~repro.errors.ValidationError` must not
count against the dependency) and report via :meth:`success`,
:meth:`failure`, or :meth:`cancel` (undo an :meth:`acquire` without
recording an outcome — e.g. the request was shed by admission control
before the dependency was ever exercised).

Counters (``serve.breaker.<name>.*``): ``opened``, ``closed``,
``half_open``, ``reject``, plus a ``serve.breaker.<name>.state`` gauge
(0 closed, 1 half-open, 2 open) so ``/stats`` shows the live state.

The clock is injectable so tests drive recovery deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict

from repro.errors import ValidationError
from repro.obs import get_obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Closed → open → half-open breaker with a rolling failure window."""

    def __init__(
        self,
        name: str,
        window: int = 16,
        min_failures: int = 4,
        failure_rate: float = 0.5,
        recovery_seconds: float = 2.0,
        probe_budget: int = 2,
        probe_successes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        if min_failures < 1:
            raise ValidationError(f"min_failures must be >= 1, got {min_failures}")
        if not 0.0 < failure_rate <= 1.0:
            raise ValidationError(
                f"failure_rate must be in (0, 1], got {failure_rate}"
            )
        if recovery_seconds <= 0:
            raise ValidationError(
                f"recovery_seconds must be > 0, got {recovery_seconds}"
            )
        if probe_budget < 1:
            raise ValidationError(f"probe_budget must be >= 1, got {probe_budget}")
        if probe_successes < 1:
            raise ValidationError(
                f"probe_successes must be >= 1, got {probe_successes}"
            )
        self.name = name
        self.window = window
        self.min_failures = min_failures
        self.failure_rate = failure_rate
        self.recovery_seconds = float(recovery_seconds)
        self.probe_budget = probe_budget
        self.probe_successes = probe_successes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        #: Rolling outcome window while closed: True = failure.
        self._outcomes: deque = deque(maxlen=window)
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probes_succeeded = 0

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """State with the open→half-open time transition applied (lock held)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._to_half_open()
        return self._state

    def retry_after(self) -> float:
        """Seconds until the next half-open probe window (>= 0)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self._opened_at + self.recovery_seconds - self._clock()
            )

    def snapshot(self) -> Dict[str, object]:
        """Live state for ``/stats``."""
        with self._lock:
            state = self._effective_state()
            failures = sum(1 for failed in self._outcomes if failed)
            return {
                "state": state,
                "window_failures": failures,
                "window_size": len(self._outcomes),
                "probes_inflight": self._probes_inflight,
            }

    # -- call protocol ----------------------------------------------------

    def acquire(self) -> bool:
        """Ask permission to call the dependency.

        ``True`` admits the call — the caller MUST then report exactly
        one of :meth:`success`/:meth:`failure`/:meth:`cancel`.
        ``False`` means the breaker is open (or the half-open probe
        budget is spent); the caller must not touch the dependency.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._probes_inflight < self.probe_budget:
                self._probes_inflight += 1
                return True
            get_obs().counter(f"serve.breaker.{self.name}.reject")
            return False

    def success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probes_succeeded += 1
                if self._probes_succeeded >= self.probe_successes:
                    self._to_closed()
                return
            if self._state == CLOSED:
                self._outcomes.append(False)

    def failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._to_open()
                return
            if self._state == CLOSED:
                self._outcomes.append(True)
                failures = sum(1 for failed in self._outcomes if failed)
                if (
                    failures >= self.min_failures
                    and failures / len(self._outcomes) >= self.failure_rate
                ):
                    self._to_open()

    def cancel(self) -> None:
        """Undo an :meth:`acquire` without recording an outcome."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)

    # -- transitions (lock held) ------------------------------------------

    def _to_open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_inflight = 0
        self._probes_succeeded = 0
        self._outcomes.clear()
        get_obs().counter(f"serve.breaker.{self.name}.opened")
        self._gauge()

    def _to_half_open(self) -> None:
        self._state = HALF_OPEN
        self._probes_inflight = 0
        self._probes_succeeded = 0
        get_obs().counter(f"serve.breaker.{self.name}.half_open")
        self._gauge()

    def _to_closed(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._probes_inflight = 0
        self._probes_succeeded = 0
        get_obs().counter(f"serve.breaker.{self.name}.closed")
        self._gauge()

    def _gauge(self) -> None:
        get_obs().gauge(
            f"serve.breaker.{self.name}.state", _STATE_GAUGE[self._state]
        )
