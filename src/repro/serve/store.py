"""Content-addressed permutation/evaluation store for the serve tier.

Keys are derived from the *structure* of the CSR matrix — the byte
content of ``row_offsets`` and ``col_indices`` plus the shape — never
from a user-supplied name, so two uploads of the same matrix (or an
upload that duplicates a corpus entry) share one store entry.  Two
entry kinds live under one root:

* ``perm``  — key = SHA-256(structure digest | technique | impl):
  the permutation and its measured pre-processing time;
* ``eval``  — key = SHA-256(perm key | kernel | policy | platform):
  the full response payload (model outputs + permutation reference),
  which is what makes a store hit byte-identical to the miss that
  created it.

Every entry is wrapped in the PR 4 versioned checksum envelope
(:mod:`repro.resilience.integrity`), so truncated or bit-flipped
entries are detected on read, quarantined under ``<store>/quarantine/``
and recomputed — a damaged store degrades to recomputation, never to a
wrong answer.  Writes go through :func:`atomic_write_document`, whose
per-write unique temp names make concurrent same-key writers safe.

Layout::

    <store>/
      perm/ab/abcdef....json
      eval/4f/4f19c2....json
      quarantine/            <- damaged entries, moved aside on read
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import CacheIntegrityError
from repro.obs import get_obs
from repro.resilience.faults import fault_point
from repro.resilience.integrity import (
    CacheScan,
    LegacyCacheEntry,
    atomic_write_document,
    load_or_quarantine,
    load_verified,
    quarantine_file,
    wrap_payload,
)

#: Store layout version: bump when the key derivation or entry payload
#: layout changes incompatibly (old entries then simply miss).
STORE_VERSION = 1

KINDS = ("perm", "eval")

#: Environment override for the store root (mirrors REPRO_CACHE_DIR).
STORE_DIR_ENV = "REPRO_SERVE_STORE"


def resolve_store_dir(store_dir: Optional[str] = None) -> str:
    """Explicit argument, else ``$REPRO_SERVE_STORE``, else a
    ``serve-store`` subdirectory of the memo cache dir."""
    if store_dir is not None:
        return store_dir
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return env
    from repro.experiments.runner import resolve_cache_dir

    return os.path.join(resolve_cache_dir(), "serve-store")


def structure_digest(csr) -> str:
    """SHA-256 of a CSR matrix's structure (shape + offsets + indices).

    Values are deliberately excluded: every reordering technique and
    every kernel trace in this pipeline depends only on the sparsity
    structure, so matrices differing solely in values share entries.
    """
    h = hashlib.sha256()
    h.update(f"csr-structure-v{STORE_VERSION}|{csr.n_rows}|{csr.n_cols}|".encode())
    h.update(np.ascontiguousarray(csr.row_offsets, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.col_indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def perm_key(digest: str, technique: str, impl: str) -> str:
    """Content address of one permutation: structure + technique + impl."""
    raw = f"perm-v{STORE_VERSION}|{digest}|{technique}|{impl}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def eval_key(
    digest: str,
    technique: str,
    impl: str,
    kernel: str,
    policy: str,
    platform: str,
) -> str:
    """Content address of one evaluated (permutation, kernel) pair."""
    raw = (
        f"eval-v{STORE_VERSION}|{perm_key(digest, technique, impl)}"
        f"|{kernel}|{policy}|{platform}"
    )
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


class PermutationStore:
    """On-disk content-addressed store with envelope verification.

    The store is shared-nothing between readers and writers: reads
    verify the envelope and quarantine damage, writes are atomic with
    unique temp names, and the key *is* the content address, so
    concurrent writers of one key write identical bytes and last-wins
    replacement is harmless.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = resolve_store_dir(root)

    def path(self, kind: str, key: str) -> str:
        if kind not in KINDS:
            raise ValueError(f"store kind must be one of {KINDS}, got {kind!r}")
        return os.path.join(self.root, kind, key[:2], f"{key}.json")

    def get(self, kind: str, key: str) -> Optional[Dict[str, object]]:
        """Verified payload for ``key``, or ``None`` (miss / quarantined)."""
        path = self.path(kind, key)
        if not os.path.exists(path):
            get_obs().counter(f"serve.store.{kind}.miss")
            return None
        # Chaos site: a ``corrupt`` rule here damages the entry before
        # the verified read (exercising quarantine-on-read); ``raise``
        # simulates a failing disk, which the service's store breaker
        # degrades to a miss.
        fault_point("serve.store.get", label=f"{kind}:{key[:12]}", path=path)
        payload = load_or_quarantine(path, cache_dir=self.root)
        if payload is None:
            get_obs().counter(f"serve.store.{kind}.miss")
            return None
        get_obs().counter(f"serve.store.{kind}.hit")
        return payload

    def put(self, kind: str, key: str, payload: Dict[str, object]) -> str:
        """Persist ``payload`` under ``key``; returns the entry path."""
        path = self.path(kind, key)
        atomic_write_document(path, wrap_payload(payload))
        # Chaos site, mirroring ``memo.write``: ``corrupt`` damages the
        # just-written entry (caught by the next verified read or the
        # startup scrub), ``raise`` simulates a failed persist.
        fault_point("serve.store.put", label=f"{kind}:{key[:12]}", path=path)
        get_obs().counter(f"serve.store.{kind}.write")
        return path

    def scan(self, quarantine: bool = False) -> CacheScan:
        """Integrity-classify every entry (``repro doctor --store``).

        Unlike the memo cache's flat :func:`scan_cache`, entries live in
        a nested ``<kind>/<key[:2]>/`` layout, so this walks recursively
        and reports store-relative names (``eval/4f/4f19c2….json``).
        With ``quarantine=True``, damaged and legacy entries are moved
        to ``<store>/quarantine/`` so they can never serve a bad hit —
        the server runs exactly this scrub at startup.
        """
        scan = CacheScan(cache_dir=self.root)
        for kind in KINDS:
            kind_root = os.path.join(self.root, kind)
            for dirpath, _dirnames, filenames in os.walk(kind_root):
                for name in sorted(filenames):
                    if not name.endswith(".json"):
                        continue
                    path = os.path.join(dirpath, name)
                    rel = os.path.relpath(path, self.root)
                    try:
                        load_verified(path)
                    except LegacyCacheEntry as exc:
                        scan.legacy.append(rel)
                        if quarantine:
                            quarantine_file(
                                path, cache_dir=self.root, reason=str(exc)
                            )
                    except CacheIntegrityError as exc:
                        scan.damaged.append((rel, str(exc)))
                        if quarantine:
                            quarantine_file(
                                path, cache_dir=self.root, reason=str(exc)
                            )
                    else:
                        scan.ok.append(rel)
        qdir = os.path.join(self.root, "quarantine")
        if os.path.isdir(qdir):
            scan.quarantined = sorted(os.listdir(qdir))
        return scan

    def stats(self) -> Dict[str, object]:
        """Entry counts and byte totals per kind (for ``/stats``)."""
        out: Dict[str, object] = {"root": self.root}
        for kind in KINDS:
            count, size = self._walk(os.path.join(self.root, kind))
            out[kind] = {"entries": count, "bytes": size}
        qcount, qsize = self._walk(os.path.join(self.root, "quarantine"))
        out["quarantine"] = {"entries": qcount, "bytes": qsize}
        return out

    @staticmethod
    def _walk(root: str) -> Tuple[int, int]:
        count = 0
        size = 0
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".json"):
                    count += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, name))
                    except OSError:
                        pass
        return count, size
