"""Roofline sanity checks (paper Section IV-B).

The paper notes SpMV's arithmetic-intensity upper bound is 0.25
FLOP/byte while the A6000 needs ~50 to become compute-bound, so SpMV is
always bandwidth-limited there.  These helpers make that argument
executable for any platform spec.
"""

from __future__ import annotations

from repro.gpu.specs import PlatformSpec


def arithmetic_intensity_spmv(n_rows: int, nnz: int, element_bytes: int = 4) -> float:
    """FLOPs per compulsory byte for SpMV.

    SpMV performs ``2 * nnz`` floating-point operations (multiply and
    add per non-zero) over the compulsory traffic of Section IV-B.
    The bound approaches 0.25 as nnz dominates.
    """
    compulsory = (2 * n_rows + (n_rows + 1) + 2 * nnz) * element_bytes
    if compulsory == 0:
        return 0.0
    return (2.0 * nnz) / compulsory


def machine_balance(platform: PlatformSpec) -> float:
    """FLOP/byte needed to become compute-bound on the platform."""
    return (platform.peak_compute_tflops * 1e12) / (
        platform.peak_bandwidth_gbs * 1e9
    )


def is_memory_bound(n_rows: int, nnz: int, platform: PlatformSpec) -> bool:
    """Whether SpMV on this matrix is bandwidth-limited on the platform."""
    return arithmetic_intensity_spmv(n_rows, nnz) < machine_balance(platform)
