"""GPU platform model (paper Table I and Section IV-B).

Provides the A6000 specification (Table I), the scaled evaluation
platform used by the simulator experiments, the compulsory-traffic /
ideal-run-time formulas, a roofline check, and the pre-processing
amortization calculator behind Figure 9.
"""

from repro.gpu.specs import A6000, PlatformSpec, SCALED_A6000, scaled_platform
from repro.gpu.perf import (
    KernelRunModel,
    ideal_time_seconds,
    model_run,
    normalized_runtime,
)
from repro.gpu.amortization import amortization_iterations
from repro.gpu.roofline import arithmetic_intensity_spmv, is_memory_bound

__all__ = [
    "A6000",
    "KernelRunModel",
    "PlatformSpec",
    "SCALED_A6000",
    "amortization_iterations",
    "arithmetic_intensity_spmv",
    "ideal_time_seconds",
    "is_memory_bound",
    "model_run",
    "normalized_runtime",
    "scaled_platform",
]
