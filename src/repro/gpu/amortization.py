"""Pre-processing amortization (paper Section VI-C, Figure 9).

"If we consider matrices to be in the RANDOM order at the beginning",
a reordering pays off after enough kernel iterations that the per-run
saving covers the one-time reordering cost:

    iterations = reorder_seconds / (t_random - t_reordered)

The paper reports 7467 iterations for GORDER vs. 741 for RABBIT and
1047 for RABBIT++.  In this reproduction the reordering runs in Python
(orders of magnitude slower than the authors' C++) while kernel times
come from the scaled performance model, so absolute counts are
inflated; the *ordering* between techniques is the reproducible shape.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError


def amortization_iterations(
    reorder_seconds: float,
    baseline_kernel_seconds: float,
    reordered_kernel_seconds: float,
) -> float:
    """Kernel iterations needed to amortize the reordering cost.

    Returns ``inf`` when the reordering does not improve the kernel
    (the cost can never be recouped).
    """
    if reorder_seconds < 0:
        raise ValidationError(f"reorder_seconds must be >= 0, got {reorder_seconds}")
    saving = baseline_kernel_seconds - reordered_kernel_seconds
    if saving <= 0:
        return math.inf
    return reorder_seconds / saving
