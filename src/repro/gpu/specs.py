"""Platform specifications.

``A6000`` reproduces the paper's Table I.  ``SCALED_A6000`` is the
default simulation platform: the corpus is ~100x smaller than the
paper's matrices, so the L2 is scaled from 6 MB down to 32 KiB to keep
the footprint-to-cache ratio — the quantity every result depends on —
in the paper's regime (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cache.config import CacheConfig
from repro.errors import ValidationError


@dataclass(frozen=True)
class PlatformSpec:
    """An evaluation platform for the performance model."""

    name: str
    l2_capacity_bytes: int
    line_bytes: int
    ways: int
    #: Theoretical peak DRAM bandwidth (Table I: 768 GB/s).
    peak_bandwidth_gbs: float
    #: Achievable streaming bandwidth (BabelStream-measured: 672 GB/s).
    achievable_bandwidth_gbs: float
    #: Relative DRAM efficiency of fine-grained irregular accesses; the
    #: calibration that reproduces the paper's traffic-to-run-time gap
    #: (e.g. RANDOM: 3.36x traffic -> 6.21x run time) is ~0.5.
    irregular_efficiency: float = 0.5
    peak_compute_tflops: float = 38.7
    dram_capacity_bytes: int = 48 * 1024**3

    def __post_init__(self) -> None:
        if self.achievable_bandwidth_gbs > self.peak_bandwidth_gbs:
            raise ValidationError(
                "achievable bandwidth cannot exceed the theoretical peak"
            )
        if not 0.0 < self.irregular_efficiency <= 1.0:
            raise ValidationError(
                f"irregular_efficiency must be in (0, 1], got {self.irregular_efficiency}"
            )

    def cache_config(self) -> CacheConfig:
        return CacheConfig(
            capacity_bytes=self.l2_capacity_bytes,
            line_bytes=self.line_bytes,
            ways=self.ways,
        )

    @property
    def achievable_bandwidth_bytes_per_s(self) -> float:
        return self.achievable_bandwidth_gbs * 1e9


#: Paper Table I: NVIDIA A6000.  The L2 transacts 32 B sectors.
A6000 = PlatformSpec(
    name="a6000",
    l2_capacity_bytes=6 * 1024 * 1024,
    line_bytes=32,
    ways=16,
    peak_bandwidth_gbs=768.0,
    achievable_bandwidth_gbs=672.0,
)

#: Default simulation platform: A6000 with the L2 scaled to the corpus.
SCALED_A6000 = PlatformSpec(
    name="scaled-a6000",
    l2_capacity_bytes=32 * 1024,
    line_bytes=32,
    ways=16,
    peak_bandwidth_gbs=768.0,
    achievable_bandwidth_gbs=672.0,
)

#: Further-reduced platform for the bench/test corpus profiles.
BENCH_PLATFORM = replace(SCALED_A6000, name="bench-a6000", l2_capacity_bytes=8 * 1024)
TEST_PLATFORM = replace(SCALED_A6000, name="test-a6000", l2_capacity_bytes=2 * 1024)

_BY_PROFILE = {
    "full": SCALED_A6000,
    "bench": BENCH_PLATFORM,
    "test": TEST_PLATFORM,
}


def scaled_platform(profile: str = "full") -> PlatformSpec:
    """The platform matched to a corpus profile's matrix sizes."""
    try:
        return _BY_PROFILE[profile]
    except KeyError:
        raise ValidationError(
            f"unknown profile {profile!r}; valid: {sorted(_BY_PROFILE)}"
        ) from None
