"""Traffic-to-run-time performance model (paper Section IV-B).

The paper defines ideal SpMV performance as "moving compulsory traffic
at peak DRAM bandwidth"; measured performance then follows from the
achieved DRAM traffic.  Run time deviates from raw traffic because
fine-grained irregular misses achieve lower DRAM efficiency than
streams — the paper's RANDOM column shows 3.36x traffic but 6.21x run
time.  The model therefore charges irregular-region misses at
``platform.irregular_efficiency`` of the streaming bandwidth:

    t = streamed_miss_bytes / BW + irregular_miss_bytes / (BW * eff)

with BW the achievable (BabelStream) bandwidth.  Normalizing by the
ideal time cancels BW, so only the efficiency split matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cache import compulsory_misses, simulate
from repro.cache.stats import CacheStats
from repro.errors import ValidationError
from repro.gpu.specs import PlatformSpec
from repro.obs import get_obs
from repro.trace.kernel_traces import KernelTrace
from repro.trace.kernelspec import KernelSpec


@dataclass
class KernelRunModel:
    """Modeled outcome of one kernel execution on one platform."""

    kernel: str
    platform: str
    stats: CacheStats
    compulsory_bytes: int
    irregular_miss_bytes: int
    streamed_miss_bytes: int
    ideal_seconds: float
    modeled_seconds: float

    @property
    def traffic_bytes(self) -> int:
        return self.stats.traffic_bytes

    @property
    def normalized_traffic(self) -> float:
        """DRAM traffic normalized to compulsory traffic (Figure 2)."""
        if self.compulsory_bytes == 0:
            return 1.0
        return self.traffic_bytes / self.compulsory_bytes

    @property
    def normalized_runtime(self) -> float:
        """Run time normalized to ideal run time (Figures 3, Table II/IV)."""
        if self.ideal_seconds == 0.0:
            return 1.0
        return self.modeled_seconds / self.ideal_seconds


def model_run(
    trace: Union[KernelTrace, object],
    platform: PlatformSpec,
    policy: str = "lru",
    kernel: Optional[Union[str, KernelSpec]] = None,
    impl: Optional[str] = None,
) -> KernelRunModel:
    """Simulate ``trace`` on ``platform`` and apply the run-time model.

    ``trace`` is normally a pre-built :class:`KernelTrace`; passing a
    sparse matrix together with ``kernel`` (a :class:`KernelSpec` or
    canonical name) builds the trace here.  ``impl`` selects the
    simulator engine (see :func:`repro.cache.simulate`).
    """
    if kernel is not None:
        trace = KernelSpec.coerce(kernel).build_trace(trace, platform)
    if not isinstance(trace, KernelTrace):
        raise ValidationError(
            "model_run expects a KernelTrace; pass kernel= to build one from a matrix"
        )
    if trace.line_bytes != platform.line_bytes:
        raise ValidationError(
            f"trace line size ({trace.line_bytes}) != platform line size "
            f"({platform.line_bytes})"
        )
    config = platform.cache_config()
    stats = simulate(
        trace.lines, config, policy=policy, regions=trace.regions, impl=impl
    )

    # The cache simulation above carries its own "cache-sim" span; this
    # span covers only the remaining run-time-model arithmetic so the
    # two stages stay disjoint in profile breakdowns.
    with get_obs().span("perf-model", kernel=trace.kernel, platform=platform.name):
        compulsory_bytes = compulsory_misses(trace.lines) * trace.line_bytes
        irregular = sum(
            stats.region_misses.get(region, 0) for region in trace.irregular_regions
        )
        irregular_bytes = irregular * trace.line_bytes
        streamed_bytes = stats.traffic_bytes - irregular_bytes

        bandwidth = platform.achievable_bandwidth_bytes_per_s
        # Ideal time: the irregular data is touched once (its compulsory
        # share) and everything streams at full bandwidth — the paper's
        # "compulsory traffic at peak achievable bandwidth".
        ideal_seconds = compulsory_bytes / bandwidth
        modeled_seconds = streamed_bytes / bandwidth + irregular_bytes / (
            bandwidth * platform.irregular_efficiency
        )
    return KernelRunModel(
        kernel=trace.kernel,
        platform=platform.name,
        stats=stats,
        compulsory_bytes=compulsory_bytes,
        irregular_miss_bytes=irregular_bytes,
        streamed_miss_bytes=streamed_bytes,
        ideal_seconds=ideal_seconds,
        modeled_seconds=modeled_seconds,
    )


def ideal_time_seconds(compulsory_bytes: int, platform: PlatformSpec) -> float:
    """Compulsory traffic moved at achievable bandwidth (Section IV-B)."""
    return compulsory_bytes / platform.achievable_bandwidth_bytes_per_s


def normalized_runtime(run: KernelRunModel) -> float:
    return run.normalized_runtime
