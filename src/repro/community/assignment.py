"""Community assignment container."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ShapeError, ValidationError


class CommunityAssignment:
    """Maps each node to a community label.

    Labels are arbitrary non-negative integers; :meth:`compact` yields
    an equivalent assignment with labels renumbered to ``0..k-1`` in
    order of first appearance.
    """

    __slots__ = ("labels",)

    def __init__(self, labels: object) -> None:
        array = np.asarray(labels)
        if array.ndim != 1:
            raise ShapeError(f"labels must be one-dimensional, got shape {array.shape}")
        if array.size and not np.issubdtype(array.dtype, np.integer):
            raise ValidationError(f"labels must be integers, got dtype {array.dtype}")
        array = array.astype(np.int64, copy=False)
        if array.size and array.min() < 0:
            raise ValidationError(f"labels must be non-negative, got min {array.min()}")
        self.labels = array

    @property
    def n_nodes(self) -> int:
        return int(self.labels.size)

    @property
    def n_communities(self) -> int:
        """Number of distinct labels."""
        if self.labels.size == 0:
            return 0
        return int(np.unique(self.labels).size)

    def compact(self) -> "CommunityAssignment":
        """Renumber labels to ``0..k-1`` by first appearance."""
        if self.labels.size == 0:
            return CommunityAssignment(self.labels.copy())
        _, first_index, inverse = np.unique(
            self.labels, return_index=True, return_inverse=True
        )
        # np.unique sorts labels; re-rank by first appearance instead.
        appearance_rank = np.argsort(np.argsort(first_index))
        return CommunityAssignment(appearance_rank[inverse])

    def sizes(self) -> np.ndarray:
        """Size of each community, indexed by compact label."""
        compacted = self.compact()
        return np.bincount(compacted.labels)

    def average_size(self) -> float:
        sizes = self.sizes()
        if sizes.size == 0:
            return 0.0
        return float(sizes.mean())

    def largest_size(self) -> int:
        sizes = self.sizes()
        if sizes.size == 0:
            return 0
        return int(sizes.max())

    def members(self) -> Dict[int, np.ndarray]:
        """Mapping of compact label to member node IDs (ascending)."""
        compacted = self.compact()
        order = np.argsort(compacted.labels, kind="stable")
        boundaries = np.flatnonzero(np.diff(compacted.labels[order])) + 1
        groups: List[np.ndarray] = np.split(order, boundaries)
        return {label: group for label, group in enumerate(groups)}

    def __eq__(self, other: object) -> bool:
        """Partition equality (invariant to label renaming)."""
        if not isinstance(other, CommunityAssignment):
            return NotImplemented
        if self.n_nodes != other.n_nodes:
            return False
        return bool(
            np.array_equal(self.compact().labels, other.compact().labels)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable container
        raise TypeError("CommunityAssignment is not hashable")

    def __repr__(self) -> str:
        return (
            f"CommunityAssignment(n_nodes={self.n_nodes}, "
            f"n_communities={self.n_communities})"
        )
