"""Sharded Rabbit community detection for scale-out matrices.

The single-visit aggregation in :func:`~repro.community.rabbit.
rabbit_communities` is inherently sequential — every merge changes the
coarsened graph the next visit sees.  This module trades a little
modularity for shard-level parallelism with a two-level scheme:

1. **Local pass** — the vertex range is split into ``n_shards``
   contiguous shards; each shard's *induced* subgraph (both endpoints
   inside the shard) runs ordinary Rabbit aggregation, independently
   and in parallel via :func:`repro.parallel.pool.map_in_pool`.
2. **Coarse pass** — the surviving local communities become the nodes
   of a coarse graph whose edge weights aggregate every original edge
   crossing two distinct communities (cut edges between shards *and*
   residual intra-shard cuts).  One more Rabbit pass on this coarse
   graph stitches communities across shard boundaries.

The per-shard merge forests and the coarse forest compose into a single
:class:`~repro.community.Dendrogram` over the original vertices, so the
result quacks exactly like single-shard detection: ``.ordering()``
yields a RABBIT-style permutation, ``assignment`` a compact labelling.

Determinism contract (locked by differential tests): the result is a
pure function of ``(graph, n_shards, n_passes)`` — ``jobs`` only
decides *where* shards run, never what they compute, and every merge
step is sequential-in-parent or order-preserving.  ``n_shards=1``
short-circuits to plain ``rabbit_communities`` and is bit-identical to
it.

Quality caveat: the coarse graph drops community self-weights (internal
edge mass), so coarse-pass modularity gains are computed against
external degrees only — a slight bias toward merging.  The modularity
delta vs. single-shard detection is tracked by the scale benchmark and
bounded in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.community.dendrogram import Dendrogram
from repro.community.rabbit import RabbitResult, rabbit_communities
from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.obs import get_obs
from repro.sparse.coo import INDEX_DTYPE
from repro.sparse.csr import CSRMatrix

#: Max entries materialized per block while aggregating coarse edges;
#: keeps the scan memmap-friendly (sequential reads, bounded RAM).
_AGGREGATE_BLOCK = 4 << 20

#: Consolidate the coarse-edge accumulator when it exceeds this many
#: distinct (community, community) pairs.
_CONSOLIDATE_LIMIT = 8 << 20


@dataclass
class ShardedRabbitResult:
    """Outcome of sharded detection; a superset of :class:`RabbitResult`.

    Attributes
    ----------
    assignment:
        Final compact node-to-community labels.
    dendrogram:
        Composed merge forest over the *original* vertices;
        ``dendrogram.ordering()`` is the sharded-RABBIT permutation.
    n_merges:
        Total accepted merges across local and coarse passes.
    n_shards:
        Effective shard count (clamped to ``n_nodes``).
    bounds:
        The contiguous ``(lo, hi)`` vertex range of each shard.
    n_local_communities:
        Communities surviving the local pass (coarse-graph node count).
    """

    assignment: CommunityAssignment
    dendrogram: Dendrogram
    n_merges: int
    n_shards: int
    bounds: Tuple[Tuple[int, int], ...]
    n_local_communities: int


def shard_bounds(n_nodes: int, n_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous, balanced ``(lo, hi)`` ranges covering ``[0, n_nodes)``.

    The first ``n_nodes % n_shards`` shards get one extra vertex, so
    sizes differ by at most one.
    """
    if n_nodes < 0:
        raise ValidationError(f"n_nodes must be non-negative, got {n_nodes}")
    if n_shards < 1:
        raise ValidationError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, max(n_nodes, 1))
    base, extra = divmod(n_nodes, n_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)


def _extract_shard(adjacency: CSRMatrix, lo: int, hi: int) -> CSRMatrix:
    """Induced subgraph on rows/cols ``[lo, hi)`` with local IDs.

    Row slices of a memmap adjacency stay lazy until masked, so the
    extraction reads each shard's rows once, sequentially.
    """
    start = int(adjacency.row_offsets[lo])
    stop = int(adjacency.row_offsets[hi])
    cols = np.asarray(adjacency.col_indices[start:stop])
    keep = (cols >= lo) & (cols < hi)
    local_cols = cols[keep] - lo
    values = np.asarray(adjacency.values[start:stop])[keep]
    row_of_entry = np.repeat(
        np.arange(hi - lo, dtype=INDEX_DTYPE),
        np.diff(adjacency.row_offsets[lo: hi + 1]),
    )[keep]
    counts = np.bincount(row_of_entry, minlength=hi - lo)
    offsets = np.zeros(hi - lo + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return CSRMatrix(hi - lo, hi - lo, offsets, local_cols, values)


def _detect_shard(
    payload: Tuple[int, CSRMatrix, int, Optional[str]]
) -> RabbitResult:
    """Pool worker: run plain Rabbit on one shard's induced subgraph."""
    _, local_csr, n_passes, impl = payload
    local_graph = Graph(local_csr, directed=False)
    # The induced slice of a symmetric, loop-free adjacency is itself
    # symmetric and loop-free; skip re-symmetrization.
    local_graph._undirected_cache = local_graph
    return rabbit_communities(local_graph, n_passes=n_passes, impl=impl)


def _leaf_roots(dendrogram: Dendrogram) -> np.ndarray:
    """Root vertex of every leaf, via vectorized pointer doubling."""
    parent = np.arange(dendrogram.n_leaves, dtype=np.int64)
    for vertex, kids in enumerate(dendrogram._children):
        if kids:
            parent[np.asarray(kids, dtype=np.int64)] = vertex
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def _consolidate(keys: np.ndarray, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    return unique_keys, np.bincount(inverse, weights=weights)


def _aggregate_coarse_edges(
    adjacency: CSRMatrix, labels: np.ndarray, n_coarse: int
) -> CSRMatrix:
    """Weighted coarse adjacency: sum of edges between distinct labels.

    Streams the (possibly memmap-backed) adjacency in row blocks of at
    most ``_AGGREGATE_BLOCK`` entries; deterministic for a fixed input
    regardless of ``jobs`` because it runs in the parent in row order.
    """
    offsets = adjacency.row_offsets
    n_rows = adjacency.n_rows
    acc_keys = np.empty(0, dtype=np.int64)
    acc_weights = np.empty(0, dtype=np.float64)
    row = 0
    while row < n_rows:
        start = int(offsets[row])
        end_row = row
        while end_row < n_rows and int(offsets[end_row + 1]) - start <= _AGGREGATE_BLOCK:
            end_row += 1
        end_row = max(end_row, row + 1)
        stop = int(offsets[end_row])
        if stop > start:
            block_rows = np.repeat(
                np.arange(row, end_row, dtype=np.int64),
                np.diff(offsets[row: end_row + 1]),
            )
            label_u = labels[block_rows]
            label_v = labels[np.asarray(adjacency.col_indices[start:stop])]
            weights = np.asarray(adjacency.values[start:stop])
            cut = label_u != label_v
            pair_keys = label_u[cut] * n_coarse + label_v[cut]
            unique_keys, inverse = np.unique(pair_keys, return_inverse=True)
            acc_keys = np.concatenate([acc_keys, unique_keys])
            acc_weights = np.concatenate(
                [acc_weights, np.bincount(inverse, weights=weights[cut])]
            )
            if acc_keys.size > _CONSOLIDATE_LIMIT:
                acc_keys, acc_weights = _consolidate(acc_keys, acc_weights)
        row = end_row
    acc_keys, acc_weights = _consolidate(acc_keys, acc_weights)
    coarse_rows = acc_keys // n_coarse
    coarse_cols = acc_keys % n_coarse
    counts = np.bincount(coarse_rows, minlength=n_coarse)
    coarse_offsets = np.zeros(n_coarse + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=coarse_offsets[1:])
    # Keys ascend, so entries are already row-major with sorted columns.
    return CSRMatrix(n_coarse, n_coarse, coarse_offsets, coarse_cols, acc_weights)


def sharded_rabbit_communities(
    graph: Graph,
    n_shards: int,
    jobs: int = 1,
    n_passes: int = 1,
    impl: Optional[str] = None,
) -> ShardedRabbitResult:
    """Two-level (local shards + coarse stitch) Rabbit detection.

    Parameters
    ----------
    graph:
        Input graph; symmetrized internally exactly like
        :func:`rabbit_communities`.
    n_shards:
        Contiguous vertex-range shards for the local pass.  ``1``
        short-circuits to plain single-shard detection (bit-identical).
    jobs:
        Worker processes for the local pass.  Never affects the result.
    n_passes / impl:
        Forwarded to the underlying Rabbit passes.
    """
    if n_shards < 1:
        raise ValidationError(f"n_shards must be positive, got {n_shards}")
    if jobs < 1:
        raise ValidationError(f"jobs must be positive, got {jobs}")
    undirected = graph.to_undirected()
    n = undirected.n_nodes
    if n_shards == 1 or n <= 1:
        base = rabbit_communities(graph, n_passes=n_passes, impl=impl)
        return ShardedRabbitResult(
            assignment=base.assignment,
            dendrogram=base.dendrogram,
            n_merges=base.n_merges,
            n_shards=1,
            bounds=((0, n),),
            n_local_communities=int(base.dendrogram.roots().size),
        )

    bounds = shard_bounds(n, n_shards)
    adjacency = undirected.adjacency
    with get_obs().span(
        "reorder-detect-sharded",
        n_shards=len(bounds),
        jobs=jobs,
        n_nodes=n,
    ):
        # Deferred import: repro.parallel's package init reaches back
        # into repro.reorder via the experiment executor.
        from repro.parallel.pool import map_in_pool

        with get_obs().span("detect-shards", n_shards=len(bounds)):
            payloads = [
                (lo, _extract_shard(adjacency, lo, hi), n_passes, impl)
                for lo, hi in bounds
            ]
            local_results = map_in_pool(_detect_shard, payloads, jobs=jobs)

        with get_obs().span("merge-shards"):
            merged = Dendrogram(n)
            children = merged._children
            absorbed = merged._absorbed
            root_of = np.empty(n, dtype=np.int64)
            n_merges = 0
            for (lo, hi), local in zip(bounds, local_results):
                for vertex, kids in enumerate(local.dendrogram._children):
                    if kids:
                        children[lo + vertex] = [lo + kid for kid in kids]
                absorbed[lo:hi] = local.dendrogram._absorbed
                root_of[lo:hi] = _leaf_roots(local.dendrogram) + lo
                n_merges += local.n_merges
            global_roots = np.flatnonzero(~absorbed)
            n_coarse = int(global_roots.size)
            labels = np.searchsorted(global_roots, root_of)
            coarse_csr = _aggregate_coarse_edges(adjacency, labels, n_coarse)

        coarse_graph = Graph(coarse_csr, directed=False)
        coarse_graph._undirected_cache = coarse_graph  # loop-free + symmetric
        coarse = rabbit_communities(coarse_graph, n_passes=n_passes, impl=impl)

        with get_obs().span("compose-dendrogram"):
            for vertex, kids in enumerate(coarse.dendrogram._children):
                if kids:
                    winner = int(global_roots[vertex])
                    children[winner].extend(int(global_roots[kid]) for kid in kids)
            absorbed[global_roots[coarse.dendrogram._absorbed]] = True
            n_merges += coarse.n_merges
            final_labels = _leaf_roots(coarse.dendrogram)[labels]
            assignment = CommunityAssignment(final_labels).compact()

    return ShardedRabbitResult(
        assignment=assignment,
        dendrogram=merged,
        n_merges=n_merges,
        n_shards=len(bounds),
        bounds=bounds,
        n_local_communities=n_coarse,
    )


__all__: Sequence[str] = (
    "ShardedRabbitResult",
    "shard_bounds",
    "sharded_rabbit_communities",
)
