"""Rabbit-style incremental-aggregation community detection.

Rabbit Order (Arai et al., IPDPS 2016 — reference [1] of the paper)
replaces Louvain's repeated passes with a *single* pass of incremental
aggregation: vertices are visited in ascending degree order, and each
visited vertex merges its community into the neighboring community with
the highest modularity gain, eagerly aggregating the adjacency so later
(higher-degree) vertices operate on the partially coarsened graph.
Every merge is recorded in a :class:`~repro.community.Dendrogram`; its
depth-first traversal is the RABBIT node ordering.

This mirrors the paper's description: "RABBIT first performs community
detection on the matrices and then assigns community members
consecutive IDs", with the hierarchy preserved by the DFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.community.dendrogram import Dendrogram
from repro.graphs.graph import Graph
from repro.obs import get_obs


@dataclass
class RabbitResult:
    """Outcome of Rabbit community detection.

    Attributes
    ----------
    assignment:
        Final node-to-community labels (compact).
    dendrogram:
        The merge forest; ``dendrogram.ordering()`` is the RABBIT
        permutation.
    n_merges:
        Number of accepted merges (``n_nodes - n_communities``).
    """

    assignment: CommunityAssignment
    dendrogram: Dendrogram
    n_merges: int


def rabbit_communities(
    graph: Graph, n_passes: int = 1, impl: Optional[str] = None
) -> RabbitResult:
    """Run incremental aggregation on the undirected view of ``graph``.

    Parameters
    ----------
    graph:
        Input graph; symmetrized internally (self loops dropped).
    n_passes:
        Number of sweeps over the (surviving) vertices.  Rabbit proper
        is single-pass; extra passes trade pre-processing time for
        slightly higher modularity and are exposed for ablations.
    impl:
        ``"auto"`` (default; also via ``$REPRO_REORDER_IMPL``),
        ``"fast"`` for the vectorized engine, or ``"reference"``.
        Both engines return bit-identical results.
    """
    # Deferred import: repro.reorder pulls this module back in.
    from repro.reorder.dispatch import resolve_for_graph

    undirected = graph.to_undirected()
    adjacency = undirected.adjacency
    resolved = resolve_for_graph(impl, adjacency.n_rows, int(adjacency.nnz))
    with get_obs().span(
        "reorder-detect", detector="rabbit", impl=resolved, n_nodes=adjacency.n_rows
    ):
        if resolved == "fast":
            from repro.community.fast.rabbit import rabbit_communities_fast

            return rabbit_communities_fast(undirected, n_passes=n_passes)
        return _rabbit_reference(undirected, n_passes)


def _rabbit_reference(undirected: Graph, n_passes: int) -> RabbitResult:
    """The original dict-per-root implementation (ground truth)."""
    adjacency = undirected.adjacency
    n = adjacency.n_rows
    dendrogram = Dendrogram(n)
    if n == 0:
        return RabbitResult(CommunityAssignment(np.empty(0, dtype=np.int64)), dendrogram, 0)

    # Union-find with path halving; parent[v] == v for live community roots.
    parent = np.arange(n, dtype=np.int64)

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = int(parent[v])
        return v

    # Per-root adjacency dictionaries.  Keys may be stale vertex IDs
    # (absorbed roots); they are resolved through `find` and compacted
    # on first touch after a merge.
    neighbor_weights: List[Dict[int, float]] = [dict() for _ in range(n)]
    offsets = adjacency.row_offsets
    indices = adjacency.col_indices
    values = adjacency.values
    for v in range(n):
        row = neighbor_weights[v]
        for k in range(int(offsets[v]), int(offsets[v + 1])):
            u = int(indices[k])
            if u != v:
                row[u] = row.get(u, 0.0) + float(values[k])

    degree = np.zeros(n, dtype=np.float64)
    row_of_entry = np.repeat(np.arange(n), np.diff(offsets))
    np.add.at(degree, row_of_entry, values)
    total_weight = float(degree.sum())  # 2m
    if total_weight == 0.0:
        return RabbitResult(
            CommunityAssignment(np.arange(n, dtype=np.int64)).compact(), dendrogram, 0
        )

    visit_order = np.argsort(degree, kind="stable")
    n_merges = 0
    for _ in range(max(1, n_passes)):
        merged_this_pass = 0
        for v_raw in visit_order:
            v = int(v_raw)
            if parent[v] != v:
                continue  # absorbed earlier; its edges live at its root
            candidates = _resolve_neighbors(neighbor_weights, parent, v, find)
            if not candidates:
                continue
            deg_v = degree[v]
            best_root = -1
            best_gain = 0.0
            for root, weight in candidates.items():
                gain = 2.0 / total_weight * (
                    weight - deg_v * degree[root] / total_weight
                )
                if gain > best_gain:
                    best_gain = gain
                    best_root = root
            if best_root < 0:
                continue
            _merge(neighbor_weights, parent, degree, dendrogram, v, best_root, find)
            n_merges += 1
            merged_this_pass += 1
        if merged_this_pass == 0:
            break

    labels = np.fromiter((find(v) for v in range(n)), dtype=np.int64, count=n)
    assignment = CommunityAssignment(labels).compact()
    return RabbitResult(assignment, dendrogram, n_merges)


def _resolve_neighbors(
    neighbor_weights: List[Dict[int, float]],
    parent: np.ndarray,
    v: int,
    find,
) -> Dict[int, float]:
    """Compact ``v``'s adjacency in place and return root -> weight."""
    row = neighbor_weights[v]
    resolved: Dict[int, float] = {}
    needs_rewrite = False
    for key, weight in row.items():
        root = find(key) if parent[key] != key else key
        if root != key:
            needs_rewrite = True
        if root != v:
            resolved[root] = resolved.get(root, 0.0) + weight
        else:
            needs_rewrite = True  # edge became internal; drop it
    if needs_rewrite:
        neighbor_weights[v] = dict(resolved)
    return resolved


def _merge(
    neighbor_weights: List[Dict[int, float]],
    parent: np.ndarray,
    degree: np.ndarray,
    dendrogram: Dendrogram,
    loser: int,
    winner: int,
    find,
) -> None:
    """Absorb community ``loser`` into community ``winner`` (both roots)."""
    parent[loser] = winner
    degree[winner] += degree[loser]
    dendrogram.absorb(winner, loser)
    target = neighbor_weights[winner]
    for key, weight in neighbor_weights[loser].items():
        root = find(key) if parent[key] != key else key
        if root == winner:
            continue
        target[root] = target.get(root, 0.0) + weight
    neighbor_weights[loser] = {}
