"""Reference Louvain community detection.

The classic two-phase method Rabbit's incremental aggregation was
derived from: repeat (1) local moving — each node greedily moves to the
neighboring community with the highest modularity gain until no move
improves — and (2) aggregation — contract each community to a single
node — until the partition stops changing.  Used to cross-validate the
Rabbit detector's modularity and in detector ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.community.modularity import modularity_csr
from repro.graphs.graph import Graph
from repro.obs import get_obs


@dataclass
class LouvainResult:
    """Final assignment plus the per-level modularity trajectory."""

    assignment: CommunityAssignment
    modularity: float
    level_modularities: List[float]


def louvain(
    graph: Graph,
    max_levels: int = 10,
    min_gain: float = 1e-9,
    impl: Optional[str] = None,
) -> LouvainResult:
    """Run Louvain on the undirected view of ``graph``.

    Deterministic: nodes are visited in ascending ID order within each
    local-moving sweep.  ``impl`` selects the engine (``"auto"`` —
    default, also via ``$REPRO_REORDER_IMPL`` — ``"fast"``, or
    ``"reference"``); both produce bit-identical results.

    Unlike the other fast paths, ``"auto"`` resolves to the reference
    here: Louvain's epsilon-gated gain scan is inherently sequential
    per node, so the vectorized engine only breaks even on multi-million
    edge graphs (~1.1x at R-MAT scale 16) and loses below that.  The
    fast engine remains available explicitly — it exists for the
    bit-identity guarantee, not throughput.
    """
    # Deferred import: repro.reorder pulls this module back in.
    from repro.reorder.dispatch import resolve_impl

    undirected = graph.to_undirected()
    adjacency = undirected.adjacency
    resolved = resolve_impl(impl)
    if resolved == "auto":
        resolved = "reference"
    with get_obs().span(
        "reorder-detect", detector="louvain", impl=resolved, n_nodes=adjacency.n_rows
    ):
        if resolved == "fast":
            from repro.community.fast.louvain import louvain_fast

            return louvain_fast(undirected, max_levels=max_levels, min_gain=min_gain)
        return _louvain_reference(undirected, max_levels, min_gain)


def _louvain_reference(
    undirected: Graph, max_levels: int, min_gain: float
) -> LouvainResult:
    """The original dict-per-node implementation (ground truth)."""
    adjacency = undirected.adjacency
    n = adjacency.n_rows
    if n == 0:
        empty = CommunityAssignment(np.empty(0, dtype=np.int64))
        return LouvainResult(empty, 0.0, [])

    # Current-level graph as adjacency dicts + self-loop weights.
    neighbor_weights: List[Dict[int, float]] = [dict() for _ in range(n)]
    offsets = adjacency.row_offsets
    indices = adjacency.col_indices
    values = adjacency.values
    self_loops = np.zeros(n, dtype=np.float64)
    for v in range(n):
        row = neighbor_weights[v]
        for k in range(int(offsets[v]), int(offsets[v + 1])):
            u = int(indices[k])
            if u == v:
                self_loops[v] += float(values[k])
            else:
                row[u] = row.get(u, 0.0) + float(values[k])

    total_weight = self_loops.sum() + sum(
        sum(row.values()) for row in neighbor_weights
    )
    if total_weight == 0.0:
        singleton = CommunityAssignment(np.arange(n, dtype=np.int64))
        return LouvainResult(singleton, 0.0, [])

    # node_map[v] = community of original node v (composed across levels).
    node_map = np.arange(n, dtype=np.int64)
    level_modularities: List[float] = []

    for _ in range(max_levels):
        labels, improved = _local_moving(
            neighbor_weights, self_loops, total_weight, min_gain
        )
        node_map = labels[node_map]
        level_modularities.append(
            modularity_csr(adjacency, node_map)
        )
        if not improved:
            break
        neighbor_weights, self_loops = _aggregate(neighbor_weights, self_loops, labels)
        if len(neighbor_weights) <= 1:
            break

    assignment = CommunityAssignment(node_map).compact()
    return LouvainResult(
        assignment,
        modularity_csr(adjacency, assignment.labels),
        level_modularities,
    )


def _local_moving(
    neighbor_weights: List[Dict[int, float]],
    self_loops: np.ndarray,
    total_weight: float,
    min_gain: float,
) -> "tuple[np.ndarray, bool]":
    """Phase 1: greedy node moves.  Returns (compact labels, improved?)."""
    n = len(neighbor_weights)
    labels = np.arange(n, dtype=np.int64)
    degree = self_loops + np.array(
        [sum(row.values()) for row in neighbor_weights], dtype=np.float64
    )
    community_degree = degree.copy()
    improved_any = False
    for _ in range(n):  # sweeps; bounded, but typically exits in a few
        moved = 0
        for v in range(n):
            current = int(labels[v])
            deg_v = degree[v]
            # Edge weight from v to each neighboring community.
            weight_to: Dict[int, float] = {}
            for u, w in neighbor_weights[v].items():
                community = int(labels[u])
                weight_to[community] = weight_to.get(community, 0.0) + w
            # Remove v from its community for unbiased comparison.
            community_degree[current] -= deg_v
            base = weight_to.get(current, 0.0)
            best_community = current
            best_gain = 0.0
            for community, weight in weight_to.items():
                if community == current:
                    continue
                gain = (
                    (weight - base)
                    - deg_v
                    * (community_degree[community] - community_degree[current])
                    / total_weight
                ) * (2.0 / total_weight)
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_community = community
            labels[v] = best_community
            community_degree[best_community] += deg_v
            if best_community != current:
                moved += 1
        if moved == 0:
            break
        improved_any = True
    # Compact labels.
    unique, inverse = np.unique(labels, return_inverse=True)
    return inverse.astype(np.int64), improved_any


def _aggregate(
    neighbor_weights: List[Dict[int, float]],
    self_loops: np.ndarray,
    labels: np.ndarray,
) -> "tuple[List[Dict[int, float]], np.ndarray]":
    """Phase 2: contract communities into super-nodes."""
    n_communities = int(labels.max()) + 1
    new_rows: List[Dict[int, float]] = [dict() for _ in range(n_communities)]
    new_loops = np.zeros(n_communities, dtype=np.float64)
    for v, row in enumerate(neighbor_weights):
        cv = int(labels[v])
        new_loops[cv] += self_loops[v]
        target = new_rows[cv]
        for u, w in row.items():
            cu = int(labels[u])
            if cu == cv:
                new_loops[cv] += w
            else:
                target[cu] = target.get(cu, 0.0) + w
    return new_rows, new_loops
