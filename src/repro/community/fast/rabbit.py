"""Vectorized Rabbit incremental aggregation.

Bit-identical to :func:`repro.community.rabbit.rabbit_communities`: the
reference keeps one Python dict per community root and resolves stale
keys through a scalar union-find; this engine keeps each live row as a
growable (keys, weights) *append buffer* and batches row folding with
numpy.  A merge copies the loser's compacted row onto the end of the
winner's buffer in O(loser row) — the winner's row is only folded when
the winner itself is next visited, so hub communities absorbing
thousands of losers never pay per-merge rebuild costs.

Deferred folding reproduces the reference's dict semantics exactly:

- *Merge-time accumulation.* ``_merge`` folds the loser's entries into
  the winner's dict by exact key (appending unmatched keys).  Since
  every appended segment has unique keys (a freshly resolved row minus
  the winner), eagerly folding segment after segment equals folding the
  whole buffer by exact key in first-occurrence order, with weights
  accumulated in input order — the same ``get(...) + w`` chains the
  dict produces.
- *Resolve.* The reference then maps dict keys to community roots and
  keeps the first occurrence of each root; a second fold over the
  stage-1 row replicates it, including the float accumulation order.
- *Internal-edge drops.* Entries resolving to the row's own root are
  dropped at resolve; entries equal to the winner are dropped at merge
  (the loser's row is freshly resolved, so its keys are live roots and
  ``root == winner`` is an exact-value test).
- *Tie-breaking.* The reference takes the first strictly-positive gain
  improvement scanning candidates in insertion order; ``argmax`` over
  the gain vector (first maximum wins) selects the same root.

Performance notes, each preserving bit-identity:

- Rows are materialized lazily: until a node's row changes, it lives
  only as a slice bound into the cleaned CSR (self-loops removed,
  duplicate columns collapsed in storage order — exactly the dicts the
  reference builds).  A row that does change becomes a mutable
  ``[keys, weights, length, pristine]`` buffer grown geometrically;
  ``pristine`` records that the keys are unique (a compacted store
  with no appends since), which lets the next visit skip the stage-1
  fold.
- Short pristine rows (the bulk of a power-law visit order) skip numpy
  entirely: below ``_SCALAR_MAX`` entries the visit runs the
  reference's own dict algorithm — identical IEEE operations in
  identical order produce identical bits — and rows whose keys are all
  still live roots skip even the dict building, scanning gains
  straight off the key/weight lists.
- The union-find forest is kept twice: an ndarray ``parent`` for batch
  gathers in the vectorized path and a plain-list mirror for the
  scalar path (numpy scalar indexing costs ~10x a list index).  The
  mirrors only need *root-equivalence*, not pointer-equality — path
  compression never changes which root a chain reaches — so each path
  compresses its own copy freely and only structural merge writes
  update both.  ``degree`` is mirrored the same way, and every
  ``_COMPACT_EVERY`` merges the whole forest is batch-compressed to
  depth one and the mirror refreshed from it.
"""

from __future__ import annotations

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.community.dendrogram import Dendrogram

#: Pristine rows with at most this many entries are folded with plain
#: dicts; larger or appended-to rows use the vectorized fold.
_SCALAR_MAX = 64

#: Globally path-compress the union-find forest after this many merges.
_COMPACT_EVERY = 4096

_EMPTY_KEYS = np.empty(0, dtype=np.int64)
_EMPTY_WEIGHTS = np.empty(0, dtype=np.float64)


def find_roots(parent: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Union-find roots for a batch of ``keys``, with path compression.

    Equivalent to the reference's per-key path-halving ``find``: both
    return the unique root of each chain, and compression only shortens
    chains without changing roots.
    """
    size = keys.size
    if size == 0:
        return keys
    roots = parent[keys]
    while True:
        grand = parent[roots]
        if np.count_nonzero(grand == roots) == size:
            break
        roots = grand
    parent[keys] = roots
    return roots


def _cleaned_csr(adjacency, row_of_entry=None):
    """CSR arrays with self-loops removed and duplicate columns merged.

    The reference builds each dict by scanning the row in storage
    order; duplicates (possible for graphs built from raw COO data)
    collapse in storage order, matching the dict's ``get(...) + w``
    accumulation, so slice ``bounds[v]:bounds[v + 1]`` *is* node ``v``'s
    initial dict.
    """
    offsets = adjacency.row_offsets
    indices = adjacency.col_indices
    values = adjacency.values
    n = adjacency.n_rows
    if row_of_entry is None:
        row_of_entry = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    keep = indices != row_of_entry
    if not keep.all():
        row_of_entry = row_of_entry[keep]
        indices = indices[keep]
        values = values[keep]
    dup = (row_of_entry[1:] == row_of_entry[:-1]) & (indices[1:] == indices[:-1])
    if dup.any():
        combined = row_of_entry * np.int64(n) + indices
        _, first_idx, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        sums = np.bincount(inverse, weights=values, minlength=first_idx.size)
        order = np.argsort(first_idx, kind="stable")
        row_of_entry = row_of_entry[first_idx[order]]
        indices = indices[first_idx[order]]
        values = sums[order]
    counts = np.bincount(row_of_entry, minlength=n).astype(np.int64)
    bounds = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
    )
    return indices.astype(np.int64, copy=False), values, bounds


class _Folder:
    """Sort-free first-occurrence fold using an O(n) scratch index.

    ``fold(keys, weights)`` collapses duplicate keys: the first
    occurrence keeps its position and weights accumulate in input order
    (exactly a dict ``get(...) + w`` chain).  Writing the reversed
    index array through the scratch makes the *last* write — i.e. the
    first occurrence — win, which identifies duplicates without any
    sorting.  The scratch is never reset: every call writes the slots
    of its own keys before reading them, so stale values from earlier
    calls are never observed.
    """

    def __init__(self, n: int) -> None:
        self._slot = np.zeros(n, dtype=np.int64)
        self._arange = np.arange(max(n, 1), dtype=np.int64)

    def fold(self, keys: np.ndarray, weights: np.ndarray):
        size = keys.size
        if self._arange.size < size:
            self._arange = np.arange(2 * size, dtype=np.int64)
        index = self._arange[:size]
        slot = self._slot
        slot[keys[::-1]] = index[::-1]
        first_pos = slot[keys]
        is_first = first_pos == index
        if np.count_nonzero(is_first) == size:
            return keys, weights
        ranks = is_first.cumsum()
        bins = ranks[first_pos] - 1
        sums = np.bincount(bins, weights=weights, minlength=int(ranks[-1]))
        return keys[is_first], sums


def rabbit_communities_fast(undirected, n_passes: int = 1):
    """Array-backed incremental aggregation on an undirected graph.

    Takes the already-symmetrized graph (built by the dispatching
    wrapper) and returns the same :class:`RabbitResult` the reference
    produces, bit for bit.
    """
    from repro.community.rabbit import RabbitResult  # deferred: cycle

    adjacency = undirected.adjacency
    n = adjacency.n_rows
    dendrogram = Dendrogram(n)
    if n == 0:
        return RabbitResult(
            CommunityAssignment(np.empty(0, dtype=np.int64)), dendrogram, 0
        )

    row_of_entry = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(adjacency.row_offsets)
    )
    # bincount accumulates its weights in entry order, one sequential
    # add per bin — the same IEEE sequence as the reference's per-row
    # scalar accumulation (and as np.add.at, which is far slower).
    degree = np.bincount(row_of_entry, weights=adjacency.values, minlength=n)
    total_weight = float(degree.sum())  # 2m
    if total_weight == 0.0:
        return RabbitResult(
            CommunityAssignment(np.arange(n, dtype=np.int64)).compact(), dendrogram, 0
        )

    indices, values, bounds = _cleaned_csr(adjacency, row_of_entry)
    parent = np.arange(n, dtype=np.int64)
    # fragments[v] is None while v's row is still its untouched CSR
    # slice; once it changes it becomes a mutable 6-slot buffer
    #     [keys, weights, length, pristine, pending_keys, pending_weights]
    # where ``keys``/``weights`` are ndarrays holding the first
    # ``length`` entries (or None while the base is still the CSR
    # slice) and the pending lists hold scalar-path appends not yet
    # flushed into the arrays (list.extend is ~10x cheaper than a
    # numpy slice-write per short append).  Merged nodes keep None too
    # (their rows are never read — the parent guard skips them first).
    fragments: list = [None] * n

    # Plain-Python mirrors for the scalar path; see module docstring.
    bounds_list = bounds.tolist()
    degree_list = degree.tolist()
    parent_list = parent.tolist()

    visit_list = np.argsort(degree, kind="stable").tolist()
    gain_scale = 2.0 / total_weight
    folder = _Folder(n)
    count_nonzero = np.count_nonzero
    node_ids = np.arange(n, dtype=np.int64)
    next_compact = _COMPACT_EVERY
    # Merge bookkeeping bypasses Dendrogram.absorb's per-call
    # validation: the engine only ever merges two distinct live roots
    # (the invariants absorb re-checks), and the absorbed flags are
    # batch-applied once the run finishes.
    children = dendrogram._children
    losers: list = []
    n_merges = 0

    def flush_pending(target, extra):
        """Fold a row's pending lists (plus ``extra`` headroom) into its
        array buffer, materializing the CSR base on first touch.

        Appends land in buffer order (base, then pending in merge
        order), so the flushed buffer is the same concatenation the
        reference's eager merges accumulate over.
        """
        pending_keys = target[4]
        count = len(pending_keys)
        length = target[2]
        new_len = length + count
        keys_buf = target[0]
        if keys_buf is None:
            # Base still the CSR slice (kept implicit while appends
            # were pure list extends); copy it with headroom.
            ws = bounds_list[target[6]]
            we = ws + length
            capacity = new_len + extra + (new_len >> 1) + 8
            keys_buf = np.empty(capacity, dtype=np.int64)
            weights_buf = np.empty(capacity, dtype=np.float64)
            keys_buf[:length] = indices[ws:we]
            weights_buf[:length] = values[ws:we]
            target[0] = keys_buf
            target[1] = weights_buf
        elif new_len + extra > keys_buf.size:
            capacity = new_len + extra + (new_len >> 1) + 8
            grown_keys = np.empty(capacity, dtype=np.int64)
            grown_weights = np.empty(capacity, dtype=np.float64)
            grown_keys[:length] = keys_buf[:length]
            grown_weights[:length] = target[1][:length]
            target[0] = keys_buf = grown_keys
            target[1] = grown_weights
        if count:
            keys_buf[length:new_len] = pending_keys
            target[1][length:new_len] = target[5]
            target[2] = new_len
            pending_keys.clear()
            target[5].clear()

    def append_array(winner, kept_keys, kept_weights, count):
        """Copy a loser's kept entries onto the winner's row buffer."""
        target = fragments[winner]
        if target is None:
            target = [None, None, bounds_list[winner + 1] - bounds_list[winner],
                      False, [], [], winner]
            fragments[winner] = target
        elif target[4]:
            flush_pending(target, count)
        else:
            target[3] = False
        length = target[2]
        new_len = length + count
        keys_buf = target[0]
        if keys_buf is None or new_len > keys_buf.size:
            flush_pending(target, count)
            keys_buf = target[0]
        keys_buf[length:new_len] = kept_keys
        target[1][length:new_len] = kept_weights
        target[2] = new_len

    for _ in range(max(1, n_passes)):
        merged_this_pass = 0
        for v in visit_list:
            if n_merges >= next_compact:
                # Periodic global path compression: batch-shorten every
                # union-find chain to depth one.  Compression never
                # changes which root a chain reaches, so this (and
                # refreshing the list mirror from it) preserves
                # bit-identity while keeping both paths' finds cheap.
                next_compact = n_merges + _COMPACT_EVERY
                find_roots(parent, node_ids)
                parent_list = parent.tolist()
            if parent_list[v] != v:
                continue  # absorbed earlier; its edges live at its root
            row = fragments[v]
            if row is None:
                start = bounds_list[v]
                end = bounds_list[v + 1]
                total_len = end - start
                pristine = True
            else:
                total_len = row[2] + len(row[4])
                pristine = row[3]
            if total_len == 0:
                continue

            if pristine and total_len <= _SCALAR_MAX:
                # ---- scalar path: the reference algorithm verbatim --
                # Only pristine (unique-keyed) rows come here;
                # appended-to rows are mostly stale keys, and the
                # vectorized batch find resolves those far faster than
                # per-key chains.
                if row is None:
                    first_keys = indices[start:end].tolist()
                    first_weights = values[start:end].tolist()
                else:
                    first_keys = row[0].tolist()
                    first_weights = row[1].tolist()
                deg_v = degree_list[v]
                winner = -1
                best_gain = 0.0
                for root, weight in zip(first_keys, first_weights):
                    if parent_list[root] != root:
                        break
                    gain = gain_scale * (
                        weight - deg_v * degree_list[root] / total_weight
                    )
                    if gain > best_gain:
                        best_gain = gain
                        winner = root
                else:
                    # Every key was a live root (and != v: initial rows
                    # have no self-loops, stored rows dropped their own
                    # root while it was still v's) — the row needs no
                    # rewrite and the gains scanned above are final.
                    if winner < 0:
                        continue
                    kept_keys = []
                    kept_weights = []
                    for root, weight in zip(first_keys, first_weights):
                        if root != winner:
                            kept_keys.append(root)
                            kept_weights.append(weight)
                    if kept_keys:
                        target = fragments[winner]
                        if target is None:
                            fragments[winner] = [
                                None, None,
                                bounds_list[winner + 1] - bounds_list[winner],
                                False, kept_keys, kept_weights, winner,
                            ]
                        else:
                            target[4].extend(kept_keys)
                            target[5].extend(kept_weights)
                            target[3] = False
                    parent[v] = winner
                    parent_list[v] = winner
                    merged_degree = degree_list[winner] + degree_list[v]
                    degree_list[winner] = merged_degree
                    degree[winner] = merged_degree
                    children[winner].append(v)
                    losers.append(v)
                    fragments[v] = None
                    n_merges += 1
                    merged_this_pass += 1
                    continue
                # Some key was stale (partial gains above are discarded
                # and recomputed).  A pristine row's keys are unique, so
                # the stage-1 exact-key fold is the identity: resolve
                # straight off the lists in input order, exactly the
                # dict iteration the reference performs.
                resolved: dict = {}
                for key, weight in zip(first_keys, first_weights):
                    root = key
                    while parent_list[root] != root:  # path-halving find
                        parent_list[root] = parent_list[parent_list[root]]
                        root = parent_list[root]
                    if root != v:
                        resolved[root] = resolved.get(root, 0.0) + weight
                if not resolved:
                    fragments[v] = [_EMPTY_KEYS, _EMPTY_WEIGHTS, 0, True, [], [], v]
                    continue
                deg_v = degree_list[v]
                winner = -1
                best_gain = 0.0
                for root, weight in resolved.items():
                    gain = gain_scale * (
                        weight - deg_v * degree_list[root] / total_weight
                    )
                    if gain > best_gain:
                        best_gain = gain
                        winner = root
                if winner < 0:
                    size = len(resolved)
                    fragments[v] = [
                        np.fromiter(resolved.keys(), np.int64, size),
                        np.fromiter(resolved.values(), np.float64, size),
                        size, True, [], [], v,
                    ]
                    continue
                kept_keys = []
                kept_weights = []
                for root, weight in resolved.items():
                    if root != winner:
                        kept_keys.append(root)
                        kept_weights.append(weight)
                if kept_keys:
                    target = fragments[winner]
                    if target is None:
                        fragments[winner] = [
                            None, None,
                            bounds_list[winner + 1] - bounds_list[winner],
                            False, kept_keys, kept_weights, winner,
                        ]
                    else:
                        target[4].extend(kept_keys)
                        target[5].extend(kept_weights)
                        target[3] = False
            else:
                # ---- vectorized path --------------------------------
                if row is None:
                    keys = indices[start:end]
                    weights = values[start:end]
                    compacted = False
                elif pristine:
                    # Pristine buffers are exact-size (compacted stores
                    # are never over-allocated) and unique-keyed, so
                    # the stage-1 fold would be the identity.
                    keys = row[0]
                    weights = row[1]
                    compacted = False
                else:
                    if row[4]:
                        flush_pending(row, 0)
                    keys, weights = folder.fold(
                        row[0][:total_len], row[1][:total_len]
                    )
                    compacted = True
                roots = parent[keys]
                if count_nonzero(roots == keys) != keys.size:
                    depth = 1
                    while True:
                        grand = parent[roots]
                        if count_nonzero(grand == roots) == roots.size:
                            break
                        roots = grand
                        depth += 1
                    if depth > 1:
                        # Compress only multi-hop chains; single-hop
                        # gathers are already as cheap as compressed
                        # ones, and skipping the scattered write saves
                        # a cache-miss pass (roots are unchanged either
                        # way).
                        parent[keys] = roots
                    external = roots != v
                    if count_nonzero(external) != roots.size:
                        roots = roots[external]
                        weights = weights[external]
                    if roots.size == 0:
                        fragments[v] = [roots, weights, 0, True, [], [], v]
                        continue
                    roots, weights = folder.fold(roots, weights)
                    compacted = True
                if compacted:
                    fragments[v] = [roots, weights, roots.size, True, [], [], v]
                # In-place gain chain: multiply is commutative bitwise
                # and the list-mirror degree holds the same values, so
                # these are the reference's IEEE ops in order.
                gains = degree[roots]
                gains *= degree_list[v]
                gains /= total_weight
                np.subtract(weights, gains, out=gains)
                gains *= gain_scale
                best = int(gains.argmax())
                if not gains[best] > 0.0:
                    continue
                winner = int(roots[best])
                external = roots != winner
                if count_nonzero(external) == roots.size:
                    append_array(winner, roots, weights, roots.size)
                else:
                    kept = roots[external]
                    if kept.size:
                        append_array(winner, kept, weights[external], kept.size)

                # ---- merge bookkeeping (reference `_merge`) ---------
                parent[v] = winner
                parent_list[v] = winner
                merged_degree = degree_list[winner] + degree_list[v]
                degree_list[winner] = merged_degree
                degree[winner] = merged_degree
                children[winner].append(v)
                losers.append(v)
                fragments[v] = None
                n_merges += 1
                merged_this_pass += 1
                continue

            # ---- merge bookkeeping for the scalar dict path ---------
            parent[v] = winner
            parent_list[v] = winner
            merged_degree = degree_list[winner] + degree_list[v]
            degree_list[winner] = merged_degree
            degree[winner] = merged_degree
            children[winner].append(v)
            losers.append(v)
            fragments[v] = None
            n_merges += 1
            merged_this_pass += 1
        if merged_this_pass == 0:
            break

    if losers:
        dendrogram._absorbed[np.asarray(losers, dtype=np.int64)] = True
    labels = find_roots(parent, np.arange(n, dtype=np.int64)).copy()
    assignment = CommunityAssignment(labels).compact()
    return RabbitResult(assignment, dendrogram, n_merges)
