"""Vectorized community-detection engines.

Array-backed implementations of the detectors in
:mod:`repro.community`, selected through the reorder dispatch layer
(:mod:`repro.reorder.dispatch`).  Each fast engine reproduces its
reference counterpart bit-for-bit — same float accumulation order,
same tie-breaking, same merge bookkeeping — so permutations and memo
caches are byte-identical across implementations.
"""

from repro.community.fast.louvain import louvain_fast
from repro.community.fast.rabbit import rabbit_communities_fast

__all__ = ["louvain_fast", "rabbit_communities_fast"]
