"""Vectorized Louvain community detection.

Bit-identical to :func:`repro.community.louvain.louvain`.  The level
graph lives in CSR-like arrays (``offsets``/``keys``/``vals`` in dict
insertion order, plus self-loop weights) instead of per-node dicts;
neighbor-community aggregation, degree computation, and community
contraction are numpy segment operations.

Bit-identity hinges on reproducing the reference's float accumulation
orders exactly:

- Row degrees come from ``sum(row.values())`` — a *sequential*
  left-to-right accumulation.  ``np.sum``/``np.add.reduce`` use
  pairwise summation and ``np.add.reduceat`` blocks differently, so
  neither matches; :func:`_sequential_segment_sums` accumulates column
  ``j`` of every row in one vector add per ``j``, which is sequential
  within each row.
- Per-node candidate weights accumulate in row (dict-insertion) order:
  ``np.bincount(inverse, weights=...)`` adds in input order.
- The greedy move keeps the reference's epsilon scan
  (``gain > best_gain + min_gain`` over candidates in insertion
  order) — an argmax is *not* equivalent when two gains differ by less
  than ``min_gain`` — so gains are computed vectorized but scanned in
  a tiny Python loop over the few candidate communities.
- Contraction interleaves self-loop and internal-edge weight adds per
  node; a single ``np.add.at`` over a ``lexsort``-ordered sequence
  reproduces the interleaving.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.community.modularity import modularity_csr


def _sequential_segment_sums(offsets: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-segment sums with left-to-right accumulation order.

    Equals ``[sum(values[s:e].tolist()) for s, e in rows]`` bit-for-bit
    in O(max segment length) vector operations: iteration ``j`` adds the
    ``j``-th element of every segment still long enough, longest
    segments kept active via an ascending-length sort.
    """
    n = offsets.size - 1
    sums = np.zeros(n, dtype=np.float64)
    if n == 0 or values.size == 0:
        return sums
    lengths = np.diff(offsets)
    by_length = np.argsort(lengths, kind="stable")
    lengths_sorted = lengths[by_length]
    starts_sorted = offsets[:-1][by_length]
    max_length = int(lengths_sorted[-1])
    for j in range(max_length):
        first = int(np.searchsorted(lengths_sorted, j, side="right"))
        active = by_length[first:]
        sums[active] += values[starts_sorted[first:] + j]
    return sums


def _level_from_csr(adjacency):
    """Split a CSR into dict-order level arrays (self-loops separated).

    Duplicate columns within a row (possible for raw COO inputs) are
    collapsed in storage order, matching dict accumulation.
    """
    offsets = adjacency.row_offsets
    indices = adjacency.col_indices
    values = adjacency.values
    n = adjacency.n_rows
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    self_mask = indices == row_of_entry
    self_loops = np.zeros(n, dtype=np.float64)
    if self_mask.any():
        np.add.at(self_loops, row_of_entry[self_mask], values[self_mask])
        row_of_entry = row_of_entry[~self_mask]
        indices = indices[~self_mask]
        values = values[~self_mask]
    dup = np.flatnonzero(
        (row_of_entry[1:] == row_of_entry[:-1]) & (indices[1:] == indices[:-1])
    )
    if dup.size:
        combined = row_of_entry * np.int64(n) + indices
        _, first_idx, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        sums = np.bincount(inverse, weights=values, minlength=first_idx.size)
        order = np.argsort(first_idx, kind="stable")
        row_of_entry = row_of_entry[first_idx[order]]
        indices = indices[first_idx[order]]
        values = sums[order]
    counts = np.bincount(row_of_entry, minlength=n).astype(np.int64)
    new_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
    )
    return new_offsets, indices, values, self_loops


def _local_moving_fast(
    offsets: np.ndarray,
    keys: np.ndarray,
    vals: np.ndarray,
    self_loops: np.ndarray,
    total_weight,
    min_gain: float,
) -> "tuple[np.ndarray, bool]":
    """Phase 1: greedy node moves (reference ``_local_moving``)."""
    n = offsets.size - 1
    labels = np.arange(n, dtype=np.int64)
    degree = self_loops + _sequential_segment_sums(offsets, vals)
    community_degree = degree.copy()
    improved_any = False
    for _ in range(n):  # sweeps; bounded, but typically exits in a few
        moved = 0
        for v in range(n):
            start, end = int(offsets[v]), int(offsets[v + 1])
            current = int(labels[v])
            deg_v = degree[v]
            community_degree[current] -= deg_v
            best_community = current
            best_gain = 0.0
            if end > start:
                communities = labels[keys[start:end]]
                unique, first_idx, inverse = np.unique(
                    communities, return_index=True, return_inverse=True
                )
                sums = np.bincount(
                    inverse, weights=vals[start:end], minlength=unique.size
                )
                order = np.argsort(first_idx, kind="stable")
                candidates = unique[order]
                weights = sums[order]
                in_current = np.flatnonzero(candidates == current)
                base = weights[in_current[0]] if in_current.size else 0.0
                gains = (
                    (weights - base)
                    - deg_v
                    * (community_degree[candidates] - community_degree[current])
                    / total_weight
                ) * (2.0 / total_weight)
                for community, gain in zip(candidates.tolist(), gains.tolist()):
                    if community == current:
                        continue
                    if gain > best_gain + min_gain:
                        best_gain = gain
                        best_community = community
            labels[v] = best_community
            community_degree[best_community] += deg_v
            if best_community != current:
                moved += 1
        if moved == 0:
            break
        improved_any = True
    unique, inverse = np.unique(labels, return_inverse=True)
    return inverse.astype(np.int64), improved_any


def _aggregate_fast(
    offsets: np.ndarray,
    keys: np.ndarray,
    vals: np.ndarray,
    self_loops: np.ndarray,
    labels: np.ndarray,
):
    """Phase 2: contract communities (reference ``_aggregate``)."""
    n = offsets.size - 1
    n_communities = int(labels.max()) + 1
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    entry_rv = labels[row_of_entry]
    entry_cu = labels[keys]
    internal = entry_rv == entry_cu

    # Self-loop sums: the reference interleaves self_loops[v] and v's
    # internal edge weights per node (ascending v, row order within).
    # rank -1 puts the self-loop contribution first within each node.
    add_targets = np.concatenate([labels, entry_rv[internal]])
    add_weights = np.concatenate([self_loops, vals[internal]])
    add_node = np.concatenate([np.arange(n, dtype=np.int64), row_of_entry[internal]])
    add_rank = np.concatenate(
        [np.full(n, -1, dtype=np.int64), np.flatnonzero(internal)]
    )
    order = np.lexsort((add_rank, add_node))
    new_loops = np.zeros(n_communities, dtype=np.float64)
    np.add.at(new_loops, add_targets[order], add_weights[order])

    # External edges: group by source community preserving global entry
    # order, then first-occurrence dedupe per (source, target) pair.
    external = ~internal
    ext_rv = entry_rv[external]
    ext_cu = entry_cu[external]
    ext_w = vals[external]
    by_source = np.argsort(ext_rv, kind="stable")
    ext_rv = ext_rv[by_source]
    ext_cu = ext_cu[by_source]
    ext_w = ext_w[by_source]
    combined = ext_rv * np.int64(n_communities) + ext_cu
    unique, first_idx, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    sums = np.bincount(inverse, weights=ext_w, minlength=unique.size)
    pair_order = np.argsort(first_idx, kind="stable")
    new_rv = unique[pair_order] // np.int64(n_communities)
    new_keys = unique[pair_order] % np.int64(n_communities)
    new_vals = sums[pair_order]
    counts = np.bincount(new_rv, minlength=n_communities).astype(np.int64)
    new_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
    )
    return new_offsets, new_keys, new_vals, new_loops


def louvain_fast(undirected, max_levels: int = 10, min_gain: float = 1e-9):
    """Array-backed Louvain on an (already symmetrized) graph."""
    from repro.community.louvain import LouvainResult  # deferred: cycle

    adjacency = undirected.adjacency
    n = adjacency.n_rows
    if n == 0:
        empty = CommunityAssignment(np.empty(0, dtype=np.int64))
        return LouvainResult(empty, 0.0, [])

    offsets, keys, vals, self_loops = _level_from_csr(adjacency)
    row_sums = _sequential_segment_sums(offsets, vals)
    accumulated = 0.0
    for row_sum in row_sums.tolist():
        accumulated += row_sum
    total_weight = self_loops.sum() + accumulated
    if total_weight == 0.0:
        singleton = CommunityAssignment(np.arange(n, dtype=np.int64))
        return LouvainResult(singleton, 0.0, [])

    node_map = np.arange(n, dtype=np.int64)
    level_modularities: List[float] = []
    for _ in range(max_levels):
        labels, improved = _local_moving_fast(
            offsets, keys, vals, self_loops, total_weight, min_gain
        )
        node_map = labels[node_map]
        level_modularities.append(modularity_csr(adjacency, node_map))
        if not improved:
            break
        offsets, keys, vals, self_loops = _aggregate_fast(
            offsets, keys, vals, self_loops, labels
        )
        if offsets.size - 1 <= 1:
            break

    assignment = CommunityAssignment(node_map).compact()
    return LouvainResult(
        assignment,
        modularity_csr(adjacency, assignment.labels),
        level_modularities,
    )
