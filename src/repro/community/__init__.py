"""Community detection substrate.

RABBIT's core is modularity-maximizing community detection (paper
Section V-A).  This subpackage implements:

* :class:`CommunityAssignment` — a validated labels container;
* :func:`modularity` — Newman–Girvan modularity of an assignment;
* :func:`louvain` — the classic two-phase Louvain method (reference
  detector, used for cross-validation);
* :func:`rabbit_communities` — Rabbit-style single-visit incremental
  aggregation that also records the merge dendrogram whose depth-first
  traversal yields the RABBIT node ordering.
"""

from repro.community.assignment import CommunityAssignment
from repro.community.dendrogram import Dendrogram
from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.rabbit import RabbitResult, rabbit_communities
from repro.community.sharded import (
    ShardedRabbitResult,
    shard_bounds,
    sharded_rabbit_communities,
)

__all__ = [
    "CommunityAssignment",
    "Dendrogram",
    "RabbitResult",
    "ShardedRabbitResult",
    "louvain",
    "modularity",
    "rabbit_communities",
    "shard_bounds",
    "sharded_rabbit_communities",
]
