"""Merge forest (dendrogram) recording community aggregation.

Rabbit's ordering step is a depth-first traversal of the merge tree
produced by community detection: every community's members receive
consecutive IDs, and hierarchically nested sub-communities stay
consecutive inside their parent (paper Section V-A).  The forest is
stored directly over the original vertices: when vertex ``v`` (and the
community it represents) is absorbed into the community represented by
``u``, ``v`` becomes a child of ``u``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ValidationError


class Dendrogram:
    """A forest over ``n_leaves`` vertices built by ``absorb`` calls."""

    __slots__ = ("n_leaves", "_children", "_absorbed")

    def __init__(self, n_leaves: int) -> None:
        if n_leaves < 0:
            raise ValidationError(f"n_leaves must be non-negative, got {n_leaves}")
        self.n_leaves = int(n_leaves)
        self._children: List[List[int]] = [[] for _ in range(self.n_leaves)]
        self._absorbed = np.zeros(self.n_leaves, dtype=bool)

    def absorb(self, winner: int, loser: int) -> None:
        """Record that ``loser``'s subtree was merged under ``winner``."""
        if not 0 <= winner < self.n_leaves or not 0 <= loser < self.n_leaves:
            raise ValidationError(
                f"absorb({winner}, {loser}) out of range for {self.n_leaves} leaves"
            )
        if winner == loser:
            raise ValidationError(f"a vertex cannot absorb itself ({winner})")
        if self._absorbed[loser]:
            raise ValidationError(f"vertex {loser} was already absorbed")
        if self._absorbed[winner]:
            raise ValidationError(
                f"absorbed vertex {winner} cannot win a merge; use its root"
            )
        self._children[winner].append(loser)
        self._absorbed[loser] = True

    def children(self, vertex: int) -> List[int]:
        return list(self._children[vertex])

    def roots(self) -> np.ndarray:
        """Vertices never absorbed, in ascending ID order."""
        return np.flatnonzero(~self._absorbed)

    def subtree_sizes(self) -> np.ndarray:
        """Number of vertices in each vertex's subtree (itself included)."""
        sizes = np.ones(self.n_leaves, dtype=np.int64)
        for vertex in self._topological_order():
            for child in self._children[vertex]:
                sizes[vertex] += sizes[child]
        return sizes

    def _topological_order(self) -> List[int]:
        """Vertices ordered children-before-parent."""
        order: List[int] = []
        for root in self.roots():
            stack = [int(root)]
            seen_at: List[int] = []
            while stack:
                vertex = stack.pop()
                seen_at.append(vertex)
                stack.extend(self._children[vertex])
            order.extend(reversed(seen_at))
        return order

    def dfs_leaf_order(self, root_order: Optional[Iterable[int]] = None) -> np.ndarray:
        """All vertices in depth-first visit order.

        Each vertex is visited before its children; children are visited
        in absorption order, so earlier merges sit closer to the
        community representative.  ``root_order`` optionally overrides
        the order in which trees are traversed (default: ascending root
        ID); it must enumerate exactly the roots.
        """
        if root_order is None:
            roots = list(self.roots())
        else:
            roots = [int(root) for root in root_order]
            expected = set(int(root) for root in self.roots())
            if set(roots) != expected or len(roots) != len(expected):
                raise ValidationError("root_order must enumerate exactly the forest roots")
        visit = np.empty(self.n_leaves, dtype=np.int64)
        cursor = 0
        for root in roots:
            stack = [root]
            while stack:
                vertex = stack.pop()
                visit[cursor] = vertex
                cursor += 1
                # Reverse so absorption order is preserved by the stack.
                stack.extend(reversed(self._children[vertex]))
        if cursor != self.n_leaves:
            raise ValidationError(
                f"traversal visited {cursor} of {self.n_leaves} vertices; forest is inconsistent"
            )
        return visit

    def ordering(self, root_order: Optional[Iterable[int]] = None) -> np.ndarray:
        """Permutation ``new_id[old_id]`` induced by the DFS traversal."""
        visit = self.dfs_leaf_order(root_order)
        perm = np.empty(self.n_leaves, dtype=np.int64)
        perm[visit] = np.arange(self.n_leaves, dtype=np.int64)
        return perm

    def __repr__(self) -> str:
        return (
            f"Dendrogram(n_leaves={self.n_leaves}, "
            f"n_roots={int((~self._absorbed).sum())})"
        )
