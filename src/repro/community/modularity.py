"""Newman–Girvan modularity.

Modularity is "the fraction of edges in a graph that only connect
vertices of the same community minus the expected fraction if edges
were randomly distributed" (paper Section V-A):

    Q = sum_c [ w_in(c) / (2m) - (d(c) / (2m))^2 ]

where ``w_in(c)`` is twice the total weight of intra-community edges of
community ``c`` (each counted from both endpoints), ``d(c)`` is the sum
of weighted degrees of its members, and ``2m`` is the total weighted
degree of the graph.  Self-loops count toward both ``w_in`` and ``d``.
"""

from __future__ import annotations

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.errors import ShapeError
from repro.graphs.graph import Graph
from repro.sparse.csr import CSRMatrix


def modularity(graph: Graph, assignment: CommunityAssignment) -> float:
    """Modularity of ``assignment`` on the undirected view of ``graph``."""
    undirected = graph.to_undirected()
    return modularity_csr(undirected.adjacency, assignment.labels)


def modularity_csr(adjacency: CSRMatrix, labels: np.ndarray) -> float:
    """Modularity on a symmetric CSR adjacency (no symmetrization pass)."""
    labels = np.asarray(labels)
    if labels.shape != (adjacency.n_rows,):
        raise ShapeError(
            f"labels shape {labels.shape} != ({adjacency.n_rows},)"
        )
    total_weight = float(adjacency.values.sum())  # == 2m for symmetric input
    if total_weight == 0.0:
        return 0.0
    # Intra-community edge weight, counted from both endpoints.
    row_of_entry = np.repeat(
        np.arange(adjacency.n_rows), np.diff(adjacency.row_offsets)
    )
    intra = labels[row_of_entry] == labels[adjacency.col_indices]
    w_in = float(adjacency.values[intra].sum())
    # Community degree sums.
    degrees = np.zeros(adjacency.n_rows, dtype=np.float64)
    np.add.at(degrees, row_of_entry, adjacency.values)
    n_labels = int(labels.max()) + 1 if labels.size else 0
    community_degree = np.zeros(n_labels, dtype=np.float64)
    np.add.at(community_degree, labels, degrees)
    expected = float(np.sum((community_degree / total_weight) ** 2))
    return w_in / total_weight - expected


def modularity_gain(
    weight_to_community: float,
    node_degree: float,
    community_degree: float,
    total_weight: float,
) -> float:
    """Gain in modularity from moving an isolated node into a community.

    ``weight_to_community`` is the edge weight between the node and the
    target community, ``node_degree`` the node's weighted degree,
    ``community_degree`` the community's current degree sum (excluding
    the node itself), and ``total_weight`` equals ``2m``.  This is the
    exact Louvain ΔQ:

        ΔQ = (2 / 2m) * (k_in - k_i * Σ_tot / 2m)
    """
    return (
        2.0
        / total_weight
        * (weight_to_community - node_degree * community_degree / total_weight)
    )
