"""Order-preserving process-pool map for coarse-grained shard work.

:mod:`repro.parallel.executor` is built around experiment cells and
memo-cache bookkeeping; shard-level parallelism (sharded community
detection, bucket placement) needs something much smaller: run ``fn``
over a handful of picklable payloads in worker processes and hand the
results back *in input order*.  Input-order results are what make the
callers deterministic — a run with ``jobs=8`` must produce the byte-for-
byte output of ``jobs=1``, so nothing downstream may depend on
completion order.

``jobs <= 1`` (or a single item) runs inline with no pool, preserving
the sequential path exactly — same code, same process, easier to debug
and to differential-test against.

Workers use the ``spawn`` start method like the experiment executor:
fork would duplicate the parent's (possibly multi-GB, memmap-backed)
address space and any open instrumentation sinks.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def map_in_pool(
    fn: Callable[[ItemT], ResultT], items: Sequence[ItemT], jobs: int = 1
) -> List[ResultT]:
    """``[fn(item) for item in items]``, optionally across processes.

    ``fn`` must be a module-level callable and every item/result must be
    picklable when ``jobs > 1``.  Results are returned in input order
    regardless of completion order; a worker exception propagates to the
    caller (remaining work is abandoned).
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(int(jobs), len(work)), mp_context=context
    ) as pool:
        return list(pool.map(fn, work))
