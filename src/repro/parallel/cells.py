"""Picklable descriptions of the pipeline cells an experiment needs.

A *cell* is the unit of memoizable work behind the experiment drivers:
either one simulated kernel run — a ``(matrix, technique, kernel,
policy, mask)`` tuple fed to :meth:`ExperimentRunner.run` — or the
RABBIT-detection structure metrics of one matrix
(:meth:`ExperimentRunner.matrix_metrics`).  Cells are frozen
dataclasses so they hash (for de-duplication) and pickle (for process
pools) without ceremony.

Driver modules advertise the cells their ``run()`` will request via a
module-level ``plan(profile)`` hook returning a list of cells; see
:mod:`repro.parallel.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

RUN = "run"
METRICS = "metrics"


@dataclass(frozen=True)
class Cell:
    """One memoizable unit of pipeline work.

    ``kind`` is either :data:`RUN` (a simulated kernel run) or
    :data:`METRICS` (matrix structure metrics); the remaining fields
    only matter for :data:`RUN` cells.
    """

    kind: str
    matrix: str
    technique: str = ""
    kernel: str = "spmv-csr"
    policy: str = "lru"
    mask: str = "none"

    def label(self) -> str:
        """Short human-readable identity for progress lines and errors."""
        if self.kind == METRICS:
            return f"metrics:{self.matrix}"
        return f"{self.matrix}/{self.technique}/{self.kernel}/{self.policy}/{self.mask}"


def run_cell(
    matrix: str,
    technique: str,
    kernel: str = "spmv-csr",
    policy: str = "lru",
    mask: str = "none",
) -> Cell:
    """Cell for one :meth:`ExperimentRunner.run` invocation."""
    return Cell(RUN, matrix, technique, kernel, policy, mask)


def metrics_cell(matrix: str) -> Cell:
    """Cell for one :meth:`ExperimentRunner.matrix_metrics` invocation."""
    return Cell(METRICS, matrix)


def dedupe_cells(cells: Iterable[Cell]) -> List[Cell]:
    """Drop duplicate cells, keeping first-seen order.

    This is what guarantees two pool workers never simulate the same
    memo key: every distinct cell is submitted exactly once.
    """
    seen = set()
    unique: List[Cell] = []
    for cell in cells:
        if cell not in seen:
            seen.add(cell)
            unique.append(cell)
    return unique
