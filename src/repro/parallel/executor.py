"""Process-pool execution of pipeline cells against a shared memo.

The executor makes a whole experiment sweep multicore without touching
driver logic: it precomputes every planned cell in ``jobs`` worker
processes, each writing its result into the same on-disk JSON memo the
sequential path uses (``os.replace`` makes those writes atomic, so
workers race safely).  Afterwards the drivers run unchanged in the
parent and find every cell already memoized — which is also the core
correctness invariant: the parallel path must produce byte-identical
``RunRecord`` / ``MatrixMetrics`` JSON to the sequential path.

De-duplication happens *before* submission (:func:`dedupe_cells`), so
no two workers ever simulate the same memo key; cells whose memo file
already exists are skipped entirely.  Cells sharing a ``(matrix,
technique)`` pair are grouped into one worker task: the reordering
permutation is memoized only in-process (spans show it at ~50% of
pipeline time), so scattering those cells across workers would
recompute it per worker — grouping runs it exactly once, like the
sequential path.

Resilience (:mod:`repro.resilience`): every cell runs under the
caller's :class:`~repro.resilience.RetryPolicy` and optional per-cell
wall-clock timeout.  Transient failures — worker death, timeouts,
injected :class:`~repro.errors.TransientError` — are retried with
exponential backoff (a broken pool is rebuilt for the retry round);
deterministic failures such as :class:`ValidationError` fail fast.  In
strict mode (the default) any permanent failure raises
:class:`~repro.errors.SweepFailure`; under ``keep_going`` it is
recorded in the stats' :class:`~repro.resilience.FailureReport` and the
sweep completes with partial results.  A retried group replays its
already-finished cells as memo hits, so progress is never lost.
Completed cell labels are checkpointed to the optional
:class:`~repro.resilience.SweepManifest` as they finish, enabling
``--resume`` after a kill.

Observability: each worker runs its cell under a private, enabled
:class:`Instrumentation` and ships its full counter snapshot
(counters, gauges, histograms) plus span totals back with the result;
the parent folds them in (:meth:`Instrumentation.merge_counter_snapshot`
/ :meth:`~Instrumentation.merge_span_totals`) so ``repro profile`` and
``repro cache-stats`` stay truthful under parallelism.  Counters add,
gauges merge max-wins, histograms merge exactly by bucket addition —
all order-independent folds, so parallel telemetry is deterministic
regardless of pool completion order.  Recovery actions tick the
``resilience.retries`` / ``resilience.cells_failed`` counters and the
``cell.attempts`` histogram.

Trace stitching: when the parent instrumentation is enabled, workers
inherit a :class:`TraceContext` — the parent's ``run_id``, its current
span id, and (when a run ledger is active) the run directory.  Each
worker roots its spans under the parent span id and appends its events
to ``events-w<pid>.jsonl`` in the run directory, so ``repro trace
<run_id>`` reassembles one logical span tree across every process.

Workers are spawned (not forked) so the path behaves identically on
Linux, macOS and Windows and never inherits parent threads mid-state.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import SweepFailure, ValidationError
from repro.experiments.runner import ExperimentRunner
from repro.gpu.specs import PlatformSpec
from repro.obs import (
    Clock,
    Instrumentation,
    JsonlSink,
    ProgressReporter,
    get_obs,
    logger,
    using,
)
from repro.parallel.cells import METRICS, Cell, dedupe_cells
from repro.parallel.planner import plan_cells
from repro.resilience import (
    CellFailure,
    FailureReport,
    RetryPolicy,
    SweepManifest,
    cell_deadline,
    fault_point,
    is_transient,
)


@dataclass(frozen=True)
class RunnerConfig:
    """Picklable construction recipe for an :class:`ExperimentRunner`.

    Workers rebuild their runner from this, so parent and workers agree
    on profile, memo directory, schedule and platform — and therefore
    on every memo key.
    """

    profile: str
    cache_dir: str
    use_cache: bool = True
    schedule: str = "sequential"
    platform: Optional[PlatformSpec] = None
    reorder_impl: Optional[str] = None

    @classmethod
    def from_runner(cls, runner: ExperimentRunner) -> "RunnerConfig":
        return cls(
            profile=runner.profile,
            cache_dir=runner.cache_dir,
            use_cache=runner.use_cache,
            schedule=runner.schedule,
            platform=runner.platform,
            reorder_impl=runner.reorder_impl,
        )

    def make_runner(self) -> ExperimentRunner:
        return ExperimentRunner(
            profile=self.profile,
            platform=self.platform,
            cache_dir=self.cache_dir,
            use_cache=self.use_cache,
            schedule=self.schedule,
            reorder_impl=self.reorder_impl,
        )


@dataclass(frozen=True)
class TraceContext:
    """Picklable trace inheritance shipped to workers via ``initargs``.

    ``run_id`` keeps every process's events in one logical trace;
    ``parent_span_id`` is the parent's span open at pool construction
    (the experiment root), so worker spans stitch under it;
    ``events_dir`` is the run-ledger directory workers append their
    ``events-w<pid>.jsonl`` to (``None`` when no ledger is active).
    """

    run_id: str
    parent_span_id: Optional[str] = None
    events_dir: Optional[str] = None

    @classmethod
    def from_obs(cls, instr: Instrumentation) -> Optional["TraceContext"]:
        if not instr.enabled:
            return None
        return cls(
            run_id=instr.run_id,
            parent_span_id=instr.current_span_id(),
            events_dir=instr.trace_dir,
        )


@dataclass
class ParallelStats:
    """What one :func:`execute_cells` call did."""

    planned: int = 0
    executed: int = 0
    skipped: int = 0
    jobs: int = 1
    retried: int = 0
    failed: int = 0
    failures: FailureReport = field(default_factory=FailureReport)


#: Per-worker-process state: the shared runner (so graphs and
#: permutations memoize across the cells one worker handles), the
#: injectable clock for deterministic-timing runs, and the per-cell
#: wall-clock timeout.
_WORKER: Dict[str, object] = {}


def _init_worker(
    config: RunnerConfig,
    clock: Optional[Clock],
    cell_timeout: Optional[float] = None,
    trace: Optional[TraceContext] = None,
) -> None:
    _WORKER["runner"] = config.make_runner()
    _WORKER["clock"] = clock
    _WORKER["timeout"] = cell_timeout
    _WORKER["trace"] = trace


def _execute_one(runner: ExperimentRunner, cell: Cell) -> None:
    if cell.kind == METRICS:
        runner.matrix_metrics(cell.matrix)
    else:
        runner.run(
            cell.matrix,
            cell.technique,
            kernel=cell.kernel,
            policy=cell.policy,
            mask=cell.mask,
        )


def _attempt_cell(
    runner: ExperimentRunner, cell: Cell, cell_timeout: Optional[float]
) -> None:
    """One attempt at one cell: the fault site runs inside the deadline
    so injected delays can exercise the timeout path.

    The whole attempt runs under a ``cell`` span — the per-cell
    wall-time histogram and the unit of the stitched trace.  This is
    the single site both the in-process (``jobs=1``) and pool paths go
    through, so their telemetry shapes agree.
    """
    label = cell.label()
    with get_obs().span("cell", cell=label):
        with cell_deadline(cell_timeout, label):
            fault_point("cell.execute", label=label)
            _execute_one(runner, cell)


class _CellFailure(Exception):
    """Pickles a failing cell's identity across the process boundary."""

    def __init__(
        self,
        label: str,
        detail: str,
        error_type: str = "",
        transient: bool = False,
        tb: str = "",
    ):
        super().__init__(label, detail, error_type, transient, tb)
        self.label = label
        self.detail = detail
        self.error_type = error_type
        self.transient = transient
        self.tb = tb


def _group_key(cell: Cell) -> Tuple[str, str]:
    # Cells sharing (matrix, technique) share the expensive in-process
    # reorder memo; metrics cells (technique == "") group per matrix.
    return (cell.matrix, cell.technique)


def _group_cells(cells: List[Cell]) -> List[Tuple[Cell, ...]]:
    groups: Dict[Tuple[str, str], List[Cell]] = {}
    for cell in cells:
        groups.setdefault(_group_key(cell), []).append(cell)
    return [tuple(group) for group in groups.values()]


def _run_group(
    cells: Tuple[Cell, ...],
) -> Tuple[List[str], Dict[str, Dict[str, object]], Dict[str, Tuple[int, float]]]:
    """Worker entry point: simulate one cell group into the shared memo.

    Returns the completed cell labels plus the full counter snapshot
    (counters, gauges, histograms) and span-total deltas the group
    caused, measured by a fresh per-group instrumentation.  When a
    :class:`TraceContext` was inherited, that instrumentation shares
    the parent's ``run_id``, roots its spans under the parent's span
    id, and appends events to ``events-w<pid>.jsonl`` in the run
    directory — one logical trace across processes.  A failing cell
    raises :class:`_CellFailure` carrying its label and transient
    classification; on a retried group the already-memoized cells
    replay as cache hits.
    """
    runner: ExperimentRunner = _WORKER["runner"]  # type: ignore[assignment]
    timeout: Optional[float] = _WORKER.get("timeout")  # type: ignore[assignment]
    trace: Optional[TraceContext] = _WORKER.get("trace")  # type: ignore[assignment]
    sink = None
    if trace is not None and trace.events_dir:
        sink = JsonlSink(
            path=os.path.join(trace.events_dir, f"events-w{os.getpid()}.jsonl")
        )
    instr = Instrumentation(
        sink=sink,
        clock=_WORKER.get("clock"),  # type: ignore[arg-type]
        enabled=True,
        run_id=trace.run_id if trace is not None else None,
        parent_span_id=trace.parent_span_id if trace is not None else None,
    )
    instr.gauge("parallel.group_cells", len(cells))
    done: List[str] = []
    try:
        with using(instr):
            for cell in cells:
                try:
                    _attempt_cell(runner, cell, timeout)
                except Exception as exc:
                    raise _CellFailure(
                        cell.label(),
                        str(exc),
                        error_type=type(exc).__name__,
                        transient=is_transient(exc),
                        tb=traceback.format_exc(),
                    ) from exc
                # One attempt per cell in pool mode (retries resubmit
                # the group), mirroring the jobs=1 path's histogram.
                instr.observe("cell.attempts", 1)
                done.append(cell.label())
    finally:
        instr.close()
    snapshot = instr.counters.snapshot()
    spans = {
        name: (total.calls, total.seconds)
        for name, total in instr.span_totals().items()
    }
    return done, snapshot, spans


def _cell_memo_path(runner: ExperimentRunner, cell: Cell) -> str:
    if cell.kind == METRICS:
        return runner.metrics_cache_path(cell.matrix)
    return runner.run_cache_path(
        cell.matrix, cell.technique, cell.kernel, cell.policy, cell.mask
    )


def _run_cell_with_retry(
    runner: ExperimentRunner,
    cell: Cell,
    retry: RetryPolicy,
    cell_timeout: Optional[float],
    sleep: Callable[[float], None],
) -> Optional[CellFailure]:
    """In-process retry loop; ``None`` on success, else the failure."""
    obs = get_obs()
    label = cell.label()
    for attempt in range(1, retry.max_attempts + 1):
        try:
            _attempt_cell(runner, cell, cell_timeout)
            obs.observe("cell.attempts", attempt)
            return None
        except Exception as exc:
            transient = is_transient(exc)
            if transient and attempt < retry.max_attempts:
                obs.counter("resilience.retries")
                logger.warning(
                    "cell %s failed transiently (%s: %s); retrying (%d/%d)",
                    label,
                    type(exc).__name__,
                    exc,
                    attempt,
                    retry.max_attempts - 1,
                )
                sleep(retry.delay(attempt))
                continue
            return CellFailure(
                label=label,
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=attempt,
                transient=transient,
                traceback=traceback.format_exc(),
            )
    raise AssertionError("unreachable")  # pragma: no cover


def execute_cells(
    cells: List[Cell],
    config: RunnerConfig,
    jobs: int,
    worker_clock: Optional[Clock] = None,
    progress: Optional[ProgressReporter] = None,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    keep_going: bool = False,
    manifest: Optional[SweepManifest] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ParallelStats:
    """Precompute ``cells`` into the shared memo with ``jobs`` workers.

    ``jobs <= 1`` executes in-process (no pool, no spawning) — the same
    code path a sequential driver run would take.  ``worker_clock``
    injects a deterministic clock into the workers (tests use a
    zero-tick :class:`~repro.obs.FakeClock` so timing fields memoize
    byte-identically across process counts).

    Failure handling: transient failures retry up to
    ``retry.max_attempts`` total attempts (default: 1, i.e. no
    retries); a permanent failure raises :class:`SweepFailure` naming
    the cell — or, with ``keep_going=True``, is recorded in
    ``stats.failures`` while the rest of the sweep completes.  Either
    way no cell is ever silently dropped.  ``manifest`` checkpoints
    completed cell labels for ``--resume``; ``sleep`` is injectable so
    tests assert backoff without waiting.
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    retry = retry if retry is not None else RetryPolicy()
    cells = dedupe_cells(cells)
    obs = get_obs()
    runner = config.make_runner()
    stats = ParallelStats(planned=len(cells), jobs=jobs)

    if not config.use_cache:
        # Workers could not share results through the memo; running the
        # pool would simulate everything and throw it away.
        logger.warning(
            "parallel precompute skipped: memoization is disabled "
            "(use_cache=False), cells will compute in-process on demand"
        )
        return stats

    pending = []
    already_done: List[str] = []
    for cell in cells:
        label = cell.label()
        if manifest is not None and label in manifest.completed_cells:
            stats.skipped += 1
            obs.counter("resilience.cells_resumed")
        elif os.path.exists(_cell_memo_path(runner, cell)):
            stats.skipped += 1
            already_done.append(label)
        else:
            pending.append(cell)
    if manifest is not None and already_done:
        manifest.mark_cells(already_done)
    obs.counter("parallel.cells.planned", stats.planned)
    obs.counter("parallel.cells.skipped", stats.skipped)
    if not pending:
        return stats

    if jobs == 1:
        with using(Instrumentation(clock=worker_clock, enabled=True)) as instr:
            for cell in pending:
                failure = _run_cell_with_retry(
                    runner, cell, retry, cell_timeout, sleep
                )
                if failure is not None:
                    stats.failed += 1
                    stats.failures.add(failure)
                    get_obs().counter("resilience.cells_failed")
                    logger.error(
                        "cell %s failed permanently: %s: %s",
                        failure.label,
                        failure.error_type,
                        failure.message,
                    )
                    if not keep_going:
                        break
                    continue
                stats.executed += 1
                if manifest is not None:
                    manifest.mark_cell(cell.label())
                if progress is not None:
                    progress.update(cell.label())
        obs.merge_counter_snapshot(instr.counters.snapshot())
        obs.merge_span_totals(
            {n: (t.calls, t.seconds) for n, t in instr.span_totals().items()}
        )
        obs.counter("parallel.cells.executed", stats.executed)
        _finish(stats, keep_going, manifest)
        return stats

    _execute_pool(
        pending,
        config,
        jobs,
        worker_clock,
        progress,
        retry,
        cell_timeout,
        keep_going,
        manifest,
        sleep,
        stats,
    )
    obs.counter("parallel.cells.executed", stats.executed)
    _finish(stats, keep_going, manifest)
    return stats


def _finish(
    stats: ParallelStats, keep_going: bool, manifest: Optional[SweepManifest]
) -> None:
    """Common sweep epilogue: persist failures, then raise or summarize."""
    if not stats.failures:
        return
    if manifest is not None:
        manifest.record_failures(stats.failures)
    if not keep_going:
        first = stats.failures.failures[0]
        raise SweepFailure(
            f"worker failed on cell {first.label}: "
            f"{first.error_type}: {first.message}",
            report=stats.failures,
        )
    logger.error("%s", stats.failures.summary_text())


def _execute_pool(
    pending: List[Cell],
    config: RunnerConfig,
    jobs: int,
    worker_clock: Optional[Clock],
    progress: Optional[ProgressReporter],
    retry: RetryPolicy,
    cell_timeout: Optional[float],
    keep_going: bool,
    manifest: Optional[SweepManifest],
    sleep: Callable[[float], None],
    stats: ParallelStats,
) -> None:
    """Pool execution in retry rounds: a broken pool is rebuilt, failed
    groups re-enter the next round until their attempt budget runs out."""
    obs = get_obs()
    trace = TraceContext.from_obs(obs)
    context = multiprocessing.get_context("spawn")
    remaining = _group_cells(pending)
    attempts: Dict[Tuple[Cell, ...], int] = {group: 0 for group in remaining}
    completed: set = set()
    round_no = 0

    logger.info(
        "parallel precompute: %d cells in %d groups "
        "(%d already memoized) on up to %d workers",
        len(pending),
        len(remaining),
        stats.skipped,
        min(jobs, len(remaining)),
    )

    while remaining:
        round_no += 1
        if round_no > 1:
            # Back off before a retry round (attempt count is per
            # group, but one shared pause per round keeps it simple and
            # injectable).
            sleep(retry.delay(round_no - 1))
        round_groups = remaining
        remaining = []
        abort = False
        # Spawned workers re-import repro; keep the pool no wider than
        # the work list so tiny sweeps don't pay for idle interpreters.
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(round_groups)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(config, worker_clock, cell_timeout, trace),
        ) as pool:
            futures = {
                pool.submit(_run_group, group): group for group in round_groups
            }
            for future in as_completed(futures):
                group = futures[future]
                try:
                    done, snapshot, spans = future.result()
                except BaseException as exc:
                    requeue = _handle_group_failure(
                        group, exc, attempts, retry, keep_going, stats, config
                    )
                    if requeue is None:
                        abort = True
                        for other in futures:
                            other.cancel()
                        break
                    remaining.extend(requeue)
                    continue
                obs.merge_counter_snapshot(snapshot)
                obs.merge_span_totals(spans)
                fresh = [label for label in done if label not in completed]
                completed.update(fresh)
                stats.executed += len(fresh)
                if manifest is not None:
                    manifest.mark_cells(fresh)
                if progress is not None:
                    for label in fresh:
                        progress.update(label)
        if abort:
            return


def _handle_group_failure(
    group: Tuple[Cell, ...],
    exc: BaseException,
    attempts: Dict[Tuple[Cell, ...], int],
    retry: RetryPolicy,
    keep_going: bool,
    stats: ParallelStats,
    config: RunnerConfig,
) -> Optional[List[Tuple[Cell, ...]]]:
    """Classify one failed group; return groups to requeue, or ``None``
    to abort the sweep (strict mode, permanent failure recorded)."""
    obs = get_obs()
    attempts[group] = attempts.get(group, 0) + 1
    if isinstance(exc, _CellFailure):
        transient = exc.transient
        label = exc.label
        error_type = exc.error_type
        message = exc.detail
        tb = exc.tb
    else:
        # The worker died (BrokenProcessPool), was cancelled alongside
        # a broken pool, or hit an unpicklable error: we cannot know
        # which cell was at fault, so the whole group is retried.
        transient = True
        label = group[0].label()
        error_type = type(exc).__name__
        message = f"{error_type}: {exc} (worker died or pool broke)"
        tb = ""

    if transient and attempts[group] < retry.max_attempts:
        obs.counter("resilience.retries")
        stats.retried += 1
        logger.warning(
            "group %s failed transiently (%s); retry %d/%d",
            label,
            message,
            attempts[group],
            retry.max_attempts - 1,
        )
        return [group]

    failure = CellFailure(
        label=label,
        error_type=error_type,
        message=message,
        attempts=attempts[group],
        transient=transient,
        traceback=tb,
    )
    stats.failures.add(failure)
    stats.failed += 1
    obs.counter("resilience.cells_failed")
    if not keep_going:
        return None

    if isinstance(exc, _CellFailure):
        # The failing cell is known: give the rest of the group (fresh
        # attempt budget) another chance — each resubmission excludes
        # one more permanently-failed cell, so this always terminates.
        rest = tuple(cell for cell in group if cell.label() != exc.label)
        if rest:
            attempts.setdefault(rest, 0)
            return [rest]
        return []
    # Unknown failing cell with the budget exhausted: record every cell
    # of the group that never reached the memo, so none vanish silently.
    runner = config.make_runner()
    for cell in group:
        if cell.label() == label:
            continue
        if not os.path.exists(_cell_memo_path(runner, cell)):
            stats.failures.add(
                CellFailure(
                    label=cell.label(),
                    error_type=error_type,
                    message=f"group aborted: {message}",
                    attempts=attempts[group],
                    transient=transient,
                    traceback="",
                )
            )
            stats.failed += 1
            obs.counter("resilience.cells_failed")
    return []


def precompute(
    drivers: Mapping[str, Callable[..., object]],
    runner: ExperimentRunner,
    jobs: int,
    worker_clock: Optional[Clock] = None,
    progress: Optional[ProgressReporter] = None,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    keep_going: bool = False,
    manifest: Optional[SweepManifest] = None,
) -> ParallelStats:
    """Plan every driver's cells and execute them with ``jobs`` workers.

    After this returns, running the drivers against ``runner`` (or any
    runner sharing its memo directory) replays the sweep as memo hits.
    """
    cells = plan_cells(drivers, runner.profile)
    stats = execute_cells(
        cells,
        RunnerConfig.from_runner(runner),
        jobs,
        worker_clock=worker_clock,
        progress=progress,
        retry=retry,
        cell_timeout=cell_timeout,
        keep_going=keep_going,
        manifest=manifest,
    )
    logger.info(
        "parallel precompute done: %d executed, %d already memoized, "
        "%d retried, %d failed, %d planned",
        stats.executed,
        stats.skipped,
        stats.retried,
        stats.failed,
        stats.planned,
    )
    return stats
