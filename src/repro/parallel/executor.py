"""Process-pool execution of pipeline cells against a shared memo.

The executor makes a whole experiment sweep multicore without touching
driver logic: it precomputes every planned cell in ``jobs`` worker
processes, each writing its result into the same on-disk JSON memo the
sequential path uses (``os.replace`` makes those writes atomic, so
workers race safely).  Afterwards the drivers run unchanged in the
parent and find every cell already memoized — which is also the core
correctness invariant: the parallel path must produce byte-identical
``RunRecord`` / ``MatrixMetrics`` JSON to the sequential path.

De-duplication happens *before* submission (:func:`dedupe_cells`), so
no two workers ever simulate the same memo key; cells whose memo file
already exists are skipped entirely.  Cells sharing a ``(matrix,
technique)`` pair are grouped into one worker task: the reordering
permutation is memoized only in-process (spans show it at ~50% of
pipeline time), so scattering those cells across workers would
recompute it per worker — grouping runs it exactly once, like the
sequential path.

Observability: each worker runs its cell under a private, enabled
:class:`Instrumentation` and ships the resulting counters and span
totals back with the result; the parent folds them into its own
instrumentation (:meth:`Instrumentation.merge_span_totals` /
``add_counters``) so ``repro profile`` and ``repro cache-stats`` stay
truthful under parallelism.

Workers are spawned (not forked) so the path behaves identically on
Linux, macOS and Windows and never inherits parent threads mid-state.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ParallelExecutionError, ValidationError
from repro.experiments.runner import ExperimentRunner
from repro.gpu.specs import PlatformSpec
from repro.obs import Clock, Instrumentation, ProgressReporter, get_obs, logger, using
from repro.parallel.cells import METRICS, Cell, dedupe_cells
from repro.parallel.planner import plan_cells


@dataclass(frozen=True)
class RunnerConfig:
    """Picklable construction recipe for an :class:`ExperimentRunner`.

    Workers rebuild their runner from this, so parent and workers agree
    on profile, memo directory, schedule and platform — and therefore
    on every memo key.
    """

    profile: str
    cache_dir: str
    use_cache: bool = True
    schedule: str = "sequential"
    platform: Optional[PlatformSpec] = None

    @classmethod
    def from_runner(cls, runner: ExperimentRunner) -> "RunnerConfig":
        return cls(
            profile=runner.profile,
            cache_dir=runner.cache_dir,
            use_cache=runner.use_cache,
            schedule=runner.schedule,
            platform=runner.platform,
        )

    def make_runner(self) -> ExperimentRunner:
        return ExperimentRunner(
            profile=self.profile,
            platform=self.platform,
            cache_dir=self.cache_dir,
            use_cache=self.use_cache,
            schedule=self.schedule,
        )


@dataclass
class ParallelStats:
    """What one :func:`execute_cells` call did."""

    planned: int = 0
    executed: int = 0
    skipped: int = 0
    jobs: int = 1


#: Per-worker-process state: the shared runner (so graphs and
#: permutations memoize across the cells one worker handles) and the
#: injectable clock for deterministic-timing runs.
_WORKER: Dict[str, object] = {}


def _init_worker(config: RunnerConfig, clock: Optional[Clock]) -> None:
    _WORKER["runner"] = config.make_runner()
    _WORKER["clock"] = clock


def _execute_one(runner: ExperimentRunner, cell: Cell) -> None:
    if cell.kind == METRICS:
        runner.matrix_metrics(cell.matrix)
    else:
        runner.run(
            cell.matrix,
            cell.technique,
            kernel=cell.kernel,
            policy=cell.policy,
            mask=cell.mask,
        )


class _CellFailure(Exception):
    """Pickles a failing cell's identity across the process boundary."""

    def __init__(self, label: str, detail: str):
        super().__init__(label, detail)
        self.label = label
        self.detail = detail


def _group_key(cell: Cell) -> Tuple[str, str]:
    # Cells sharing (matrix, technique) share the expensive in-process
    # reorder memo; metrics cells (technique == "") group per matrix.
    return (cell.matrix, cell.technique)


def _group_cells(cells: List[Cell]) -> List[Tuple[Cell, ...]]:
    groups: Dict[Tuple[str, str], List[Cell]] = {}
    for cell in cells:
        groups.setdefault(_group_key(cell), []).append(cell)
    return [tuple(group) for group in groups.values()]


def _run_group(
    cells: Tuple[Cell, ...],
) -> Tuple[List[str], Dict[str, float], Dict[str, Tuple[int, float]]]:
    """Worker entry point: simulate one cell group into the shared memo.

    Returns the completed cell labels plus the counter and span-total
    deltas the group caused, measured by a fresh per-group
    instrumentation.
    """
    runner: ExperimentRunner = _WORKER["runner"]  # type: ignore[assignment]
    instr = Instrumentation(clock=_WORKER.get("clock"), enabled=True)  # type: ignore[arg-type]
    done: List[str] = []
    with using(instr):
        for cell in cells:
            try:
                _execute_one(runner, cell)
            except Exception as exc:
                raise _CellFailure(
                    cell.label(), f"{type(exc).__name__}: {exc}"
                ) from exc
            done.append(cell.label())
    counters = instr.counters.snapshot()["counters"]
    spans = {
        name: (total.calls, total.seconds)
        for name, total in instr.span_totals().items()
    }
    return done, counters, spans


def _cell_memo_path(runner: ExperimentRunner, cell: Cell) -> str:
    if cell.kind == METRICS:
        return runner.metrics_cache_path(cell.matrix)
    return runner.run_cache_path(
        cell.matrix, cell.technique, cell.kernel, cell.policy, cell.mask
    )


def execute_cells(
    cells: List[Cell],
    config: RunnerConfig,
    jobs: int,
    worker_clock: Optional[Clock] = None,
    progress: Optional[ProgressReporter] = None,
) -> ParallelStats:
    """Precompute ``cells`` into the shared memo with ``jobs`` workers.

    ``jobs <= 1`` executes in-process (no pool, no spawning) — the same
    code path a sequential driver run would take.  Any worker failure
    raises :class:`ParallelExecutionError` naming the cell; cells are
    never silently dropped.  ``worker_clock`` injects a deterministic
    clock into the workers (tests use a zero-tick
    :class:`~repro.obs.FakeClock` so timing fields memoize
    byte-identically across process counts).
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    cells = dedupe_cells(cells)
    obs = get_obs()
    runner = config.make_runner()
    stats = ParallelStats(planned=len(cells), jobs=jobs)

    if not config.use_cache:
        # Workers could not share results through the memo; running the
        # pool would simulate everything and throw it away.
        logger.warning(
            "parallel precompute skipped: memoization is disabled "
            "(use_cache=False), cells will compute in-process on demand"
        )
        return stats

    pending = []
    for cell in cells:
        if os.path.exists(_cell_memo_path(runner, cell)):
            stats.skipped += 1
        else:
            pending.append(cell)
    obs.counter("parallel.cells.planned", stats.planned)
    obs.counter("parallel.cells.skipped", stats.skipped)
    if not pending:
        return stats

    if jobs == 1:
        with using(Instrumentation(clock=worker_clock, enabled=True)) as instr:
            for cell in pending:
                _execute_one(runner, cell)
                stats.executed += 1
                if progress is not None:
                    progress.update(cell.label())
        obs.add_counters(instr.counters.snapshot()["counters"])
        obs.merge_span_totals(
            {n: (t.calls, t.seconds) for n, t in instr.span_totals().items()}
        )
        obs.counter("parallel.cells.executed", stats.executed)
        return stats

    # Spawned workers re-import repro; keep the pool no wider than the
    # work list so tiny sweeps don't pay for idle interpreters.
    groups = _group_cells(pending)
    context = multiprocessing.get_context("spawn")
    n_workers = min(jobs, len(groups))
    logger.info(
        "parallel precompute: %d cells in %d groups "
        "(%d already memoized) on %d workers",
        len(pending),
        len(groups),
        stats.skipped,
        n_workers,
    )
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(config, worker_clock),
    ) as pool:
        futures = {pool.submit(_run_group, group): group for group in groups}
        for future in as_completed(futures):
            group = futures[future]
            try:
                done, counters, spans = future.result()
            except BaseException as exc:
                for other in futures:
                    other.cancel()
                if isinstance(exc, _CellFailure):
                    message = f"worker failed on cell {exc.label}: {exc.detail}"
                else:
                    message = (
                        f"worker failed on cell {group[0].label()}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                raise ParallelExecutionError(message) from exc
            obs.add_counters(counters)
            obs.merge_span_totals(spans)
            stats.executed += len(done)
            if progress is not None:
                for label in done:
                    progress.update(label)
    obs.counter("parallel.cells.executed", stats.executed)
    return stats


def precompute(
    drivers: Mapping[str, Callable[..., object]],
    runner: ExperimentRunner,
    jobs: int,
    worker_clock: Optional[Clock] = None,
    progress: Optional[ProgressReporter] = None,
) -> ParallelStats:
    """Plan every driver's cells and execute them with ``jobs`` workers.

    After this returns, running the drivers against ``runner`` (or any
    runner sharing its memo directory) replays the sweep as memo hits.
    """
    cells = plan_cells(drivers, runner.profile)
    stats = execute_cells(
        cells,
        RunnerConfig.from_runner(runner),
        jobs,
        worker_clock=worker_clock,
        progress=progress,
    )
    logger.info(
        "parallel precompute done: %d executed, %d already memoized, %d planned",
        stats.executed,
        stats.skipped,
        stats.planned,
    )
    return stats
