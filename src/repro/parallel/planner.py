"""Enumerate the pipeline cells a set of experiment drivers will need.

Each driver module may expose a ``plan(profile) -> List[Cell]`` hook
describing the ``runner.run`` / ``runner.matrix_metrics`` calls its
``run()`` performs.  The planner collects those hooks and de-duplicates
the union (fig7 and fig8 both want ``(m, "rabbit", spmv-csr, lru)``,
for example), producing the work list for
:func:`repro.parallel.executor.execute_cells`.

Drivers without a hook (table1 renders static specs; fig9 runs a
generated-size sweep with its own memo) simply contribute no cells —
their ``run()`` still executes in the parent process, so correctness
never depends on a complete plan: a missed cell is computed
sequentially on first request, exactly as before.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Mapping

from repro.parallel.cells import Cell, dedupe_cells


def driver_plan(driver: Callable[..., object], profile: str) -> List[Cell]:
    """Cells one driver's ``run()`` will request (empty without a hook)."""
    module = sys.modules.get(driver.__module__)
    hook = getattr(module, "plan", None)
    if hook is None:
        return []
    return list(hook(profile))


def plan_cells(
    drivers: Mapping[str, Callable[..., object]], profile: str
) -> List[Cell]:
    """De-duplicated union of every driver's planned cells."""
    cells: List[Cell] = []
    for driver in drivers.values():
        cells.extend(driver_plan(driver, profile))
    return dedupe_cells(cells)
