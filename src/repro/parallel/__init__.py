"""repro.parallel — multicore precomputation of experiment sweeps.

The paper's artifacts decompose into thousands of independent
``(matrix, technique, kernel, policy, mask)`` pipeline cells, all
memoized as JSON files by :class:`ExperimentRunner`.  This package
enumerates the cells a set of drivers will request
(:mod:`~repro.parallel.planner`), precomputes them in ``N`` worker
processes sharing that on-disk memo (:mod:`~repro.parallel.executor`),
and merges worker-side observability back into the parent — after
which the drivers themselves replay the sweep as pure memo hits.

Entry points: ``run_all(jobs=N)``, ``repro run-all --jobs N`` and
``repro experiment <name> --jobs N``; ``jobs=1`` preserves the
in-process sequential path exactly.
"""

from repro.parallel.cells import (
    METRICS,
    RUN,
    Cell,
    dedupe_cells,
    metrics_cell,
    run_cell,
)
from repro.parallel.executor import (
    ParallelStats,
    RunnerConfig,
    TraceContext,
    execute_cells,
    precompute,
)
from repro.parallel.planner import driver_plan, plan_cells
from repro.parallel.pool import map_in_pool

__all__ = [
    "METRICS",
    "RUN",
    "Cell",
    "ParallelStats",
    "RunnerConfig",
    "TraceContext",
    "dedupe_cells",
    "driver_plan",
    "execute_cells",
    "map_in_pool",
    "metrics_cell",
    "plan_cells",
    "precompute",
    "run_cell",
]
