"""repro — reproduction of "Community-based Matrix Reordering for
Sparse Linear Algebra Optimization" (Balaji et al., ISPASS 2023).

The library provides, end to end, everything the paper's evaluation
needs:

* sparse formats and reference kernels (:mod:`repro.sparse`);
* a synthetic input corpus mirroring the paper's 50-matrix selection
  (:mod:`repro.graphs`);
* community detection — Rabbit-style incremental aggregation and
  Louvain (:mod:`repro.community`);
* the reordering techniques: RANDOM/ORIGINAL, DEGSORT, DBG, HUBSORT,
  HUBCLUSTER, GORDER, RCM, SLASHBURN, RABBIT and the paper's RABBIT++
  (:mod:`repro.reorder`);
* a trace-driven L2 cache simulator with LRU and Belady replacement
  (:mod:`repro.cache`, :mod:`repro.trace`);
* the GPU platform/performance model (:mod:`repro.gpu`);
* analysis metrics — insularity, skew, community statistics
  (:mod:`repro.metrics`);
* one experiment driver per paper table and figure
  (:mod:`repro.experiments`).

Quick start::

    from repro import load_graph, make_technique, evaluate_ordering

    graph = load_graph("soc-forum")
    perm = make_technique("rabbit++").compute(graph)
    result = evaluate_ordering(graph, perm)
    print(result.normalized_traffic, result.normalized_runtime)
"""

from repro.api import (
    Recommendation,
    ReorderEvaluation,
    evaluate_ordering,
    recommend,
    reorder_and_evaluate,
    reorder_matrix,
)
from repro.cache import (
    CacheConfig,
    CacheStats,
    simulate,
    simulate_belady,
    simulate_lru,
)
from repro.community import (
    CommunityAssignment,
    louvain,
    modularity,
    rabbit_communities,
)
from repro.graphs import Graph, corpus_names, load_matrix
from repro.graphs.corpus import load_graph
from repro.gpu import A6000, SCALED_A6000, PlatformSpec, model_run, scaled_platform
from repro.metrics import degree_skew, insular_node_fraction, insularity
from repro.reorder import (
    PAPER_TECHNIQUES,
    RabbitOrder,
    RabbitPlusPlus,
    available_techniques,
    make_technique,
)
from repro.sparse import COOMatrix, CSRMatrix, spmm_csr, spmv_coo, spmv_csr
from repro.trace import (
    KernelSpec,
    spgemm_csr_trace,
    spmm_csr_trace,
    spmv_coo_trace,
    spmv_csr_trace,
)

__version__ = "1.0.0"

__all__ = [
    "A6000",
    "COOMatrix",
    "CSRMatrix",
    "CacheConfig",
    "CacheStats",
    "CommunityAssignment",
    "Graph",
    "KernelSpec",
    "PAPER_TECHNIQUES",
    "PlatformSpec",
    "RabbitOrder",
    "RabbitPlusPlus",
    "Recommendation",
    "ReorderEvaluation",
    "SCALED_A6000",
    "available_techniques",
    "corpus_names",
    "degree_skew",
    "evaluate_ordering",
    "insular_node_fraction",
    "insularity",
    "load_graph",
    "load_matrix",
    "louvain",
    "make_technique",
    "model_run",
    "modularity",
    "rabbit_communities",
    "recommend",
    "reorder_and_evaluate",
    "reorder_matrix",
    "scaled_platform",
    "simulate",
    "simulate_belady",
    "simulate_lru",
    "spgemm_csr_trace",
    "spmm_csr",
    "spmm_csr_trace",
    "spmv_coo",
    "spmv_coo_trace",
    "spmv_csr",
    "spmv_csr_trace",
]
