"""Deterministic fault injection for the experiment stack.

The resilience machinery (retries, quarantine, keep-going, resume) is
only trustworthy if its failure paths are exercised — so the runner and
executor expose named *fault sites*, and a :class:`FaultPlan` describes
exactly which faults to fire at them.  Production code calls
:func:`fault_point` at each site; with no plan configured that is a
single dictionary lookup.

A plan comes from the ``REPRO_FAULT_PLAN`` environment variable —
either inline JSON or a path to a JSON file (the env var propagates
into spawned pool workers automatically)::

    {
      "state_dir": "/tmp/faults",
      "faults": [
        {"site": "cell.execute", "match": "soc-forum", "action": "raise",
         "exception": "transient", "times": 2},
        {"site": "cell.execute", "action": "kill", "times": 1},
        {"site": "memo.write", "match": "run-", "action": "corrupt",
         "mode": "truncate", "times": 1},
        {"site": "cell.execute", "action": "delay", "seconds": 0.5}
      ]
    }

Known sites:

* ``cell.execute`` — immediately before a pipeline cell runs (both the
  in-process ``jobs=1`` path and pool workers); ``match`` tests against
  the cell label.
* ``memo.write`` — immediately after a memo file is written; ``match``
  tests against the file's basename, and ``corrupt`` damages the
  just-written bytes (truncate or bit-flip).
* ``serve.compute`` — inside the serve tier's admitted compute path,
  before the reorder+simulate pipeline; ``match`` tests against
  ``technique|kernel``.  ``raise`` faults here drive the serve tier's
  compute circuit breaker.
* ``serve.store.get`` — before a verified permutation-store read
  (``corrupt`` damages the entry so the read quarantines it); ``match``
  tests against ``kind:key-prefix``.
* ``serve.store.put`` — after a permutation-store entry is written,
  mirroring ``memo.write`` (``corrupt`` damages the entry on disk,
  ``raise`` simulates a failed persist feeding the store breaker).
* ``serve.render`` — between a successful service call and the HTTP
  response write (the lost-response path); ``match`` tests against
  ``path|store-state``.

Actions: ``raise`` (named exception), ``kill`` (``os._exit`` in pool
workers — simulating a crashed worker; in the parent process it raises
a :class:`TransientError` instead so tests don't kill themselves),
``delay`` (sleep), ``corrupt`` (damage the file at ``path``).

Determinism: each rule fires at most ``times`` times.  With a
``state_dir`` the count is shared across *processes* via exclusive
marker-file creation — a rule with ``times: 1`` fires exactly once
per sweep no matter how many workers race past the site or how often a
retried group re-runs; without one, counts are per-process.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.errors import (
    CacheIntegrityError,
    CellTimeoutError,
    TransientError,
    ValidationError,
)
from repro.obs import get_obs, logger

ENV_VAR = "REPRO_FAULT_PLAN"

ACTIONS = ("raise", "kill", "delay", "corrupt")
CORRUPT_MODES = ("truncate", "flip")

#: Exception names a ``raise`` rule may ask for.
EXCEPTIONS: Dict[str, Type[BaseException]] = {
    "transient": TransientError,
    "timeout": CellTimeoutError,
    "integrity": CacheIntegrityError,
    "validation": ValidationError,
    "runtime": RuntimeError,
    "oserror": OSError,
}


@dataclass(frozen=True)
class FaultRule:
    """One fault to inject: where, what, how often."""

    site: str
    action: str
    match: str = ""
    times: int = 1
    exception: str = "transient"
    seconds: float = 0.01
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValidationError(
                f"fault action must be one of {ACTIONS}, got {self.action!r}"
            )
        if self.exception not in EXCEPTIONS:
            raise ValidationError(
                f"fault exception must be one of {sorted(EXCEPTIONS)}, "
                f"got {self.exception!r}"
            )
        if self.mode not in CORRUPT_MODES:
            raise ValidationError(
                f"corrupt mode must be one of {CORRUPT_MODES}, got {self.mode!r}"
            )
        if self.times < 1:
            raise ValidationError(f"fault times must be >= 1, got {self.times}")


class FaultPlan:
    """A parsed set of fault rules plus optional cross-process state."""

    def __init__(
        self, rules: List[FaultRule], state_dir: Optional[str] = None
    ) -> None:
        self.rules = list(rules)
        self.state_dir = state_dir

    @classmethod
    def from_document(cls, document: object) -> "FaultPlan":
        """Build from decoded JSON: a rule list or ``{state_dir, faults}``."""
        state_dir: Optional[str] = None
        if isinstance(document, dict):
            state_dir = document.get("state_dir")
            items = document.get("faults", [])
        elif isinstance(document, list):
            items = document
        else:
            raise ValidationError(
                f"fault plan must be a JSON object or array, got {type(document).__name__}"
            )
        rules = []
        for item in items:
            if not isinstance(item, dict):
                raise ValidationError(f"fault rule must be an object, got {item!r}")
            try:
                rules.append(FaultRule(**item))
            except TypeError as exc:
                raise ValidationError(f"malformed fault rule {item!r}: {exc}") from exc
        return cls(rules, state_dir=state_dir)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse inline JSON, or read a JSON file when given a path."""
        stripped = text.strip()
        if stripped.startswith("{") or stripped.startswith("["):
            source = stripped
        else:
            try:
                with open(stripped, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise ValidationError(
                    f"cannot read fault plan file {stripped!r}: {exc}"
                ) from exc
        try:
            document = json.loads(source)
        except ValueError as exc:
            raise ValidationError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_document(document)


class FaultInjector:
    """Executes a plan's rules as fault sites are reached."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fired: List[int] = [0] * len(plan.rules)

    def fire(self, site: str, label: str = "", path: str = "") -> None:
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            target = label or (os.path.basename(path) if path else "")
            if rule.match and rule.match not in target:
                continue
            if not self._claim(index, rule):
                continue
            self._act(rule, label=label, path=path)

    def _claim(self, index: int, rule: FaultRule) -> bool:
        """At-most-``times`` semantics, cross-process when state_dir set."""
        if self.plan.state_dir:
            os.makedirs(self.plan.state_dir, exist_ok=True)
            for slot in range(rule.times):
                marker = os.path.join(self.plan.state_dir, f"fault-{index}-{slot}")
                try:
                    handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(handle)
                return True
            return False
        if self._fired[index] >= rule.times:
            return False
        self._fired[index] += 1
        return True

    def _act(self, rule: FaultRule, label: str, path: str) -> None:
        where = label or path or rule.site
        get_obs().counter(f"faults.injected.{rule.action}")
        logger.warning("fault injected: %s at %s (%s)", rule.action, rule.site, where)
        if rule.action == "raise":
            raise EXCEPTIONS[rule.exception](
                f"injected {rule.exception} fault at {rule.site} ({where})"
            )
        if rule.action == "delay":
            time.sleep(rule.seconds)
            return
        if rule.action == "kill":
            if multiprocessing.parent_process() is not None:
                os._exit(86)
            raise TransientError(
                f"injected kill at {rule.site} ({where}) — "
                "in-process, raising instead of exiting"
            )
        if rule.action == "corrupt":
            _corrupt_file(path, rule.mode)


def _corrupt_file(path: str, mode: str) -> None:
    """Damage a just-written file in place (deliberately non-atomic)."""
    if not path or not os.path.exists(path):
        return
    with open(path, "rb") as handle:
        data = handle.read()
    if mode == "truncate":
        damaged = data[: len(data) // 2]
    else:
        middle = len(data) // 2
        damaged = data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1 :]
    with open(path, "wb") as handle:
        handle.write(damaged)


# -- process-wide accessor ----------------------------------------------

#: (env text, injector) cache so an unchanged plan parses once per
#: process; an explicit injector installed by tests overrides the env.
_cached: "tuple[str, Optional[FaultInjector]]" = ("", None)
_override: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    global _cached
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR, "")
    if _cached[0] == env:
        return _cached[1]
    injector = FaultInjector(FaultPlan.parse(env)) if env else None
    _cached = (env, injector)
    return injector


def fault_point(site: str, label: str = "", path: str = "") -> None:
    """Hook called by instrumented code at a named fault site."""
    injector = get_injector()
    if injector is not None:
        injector.fire(site, label=label, path=path)


def install_injector(injector: Optional[FaultInjector]) -> None:
    """Install (or with ``None``, clear) an explicit in-process injector."""
    global _override
    _override = injector


def reset_faults() -> None:
    """Drop both the override and the parsed-env cache (test teardown)."""
    global _cached, _override
    _cached = ("", None)
    _override = None
