"""Retry and timeout policy for pipeline cells.

Two small, composable pieces:

* :class:`RetryPolicy` — how many attempts a cell gets and how long to
  back off between them (exponential with a cap).  Pure arithmetic: the
  executor owns the actual ``sleep`` so tests can inject a recording
  fake and assert exact delays without waiting.
* :func:`cell_deadline` — a context manager enforcing a per-cell
  wall-clock budget via ``SIGALRM``/``setitimer``.  On platforms or
  threads where POSIX interval timers are unavailable the deadline
  degrades to a no-op rather than failing the sweep.

Classification lives here too: :func:`is_transient` decides whether an
exception is worth retrying (:class:`~repro.errors.TransientError` and
its subclasses, dead worker pools, connection hiccups) or deterministic
(everything else — a :class:`~repro.errors.ValidationError` will fail
identically on every attempt, so it fails fast).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from concurrent.futures.process import BrokenProcessPool

from repro.errors import CellTimeoutError, TransientError, ValidationError

#: Exception types the resilience layer considers retryable.
TRANSIENT_TYPES = (TransientError, BrokenProcessPool, ConnectionError)


def is_transient(exc: BaseException) -> bool:
    """True when retrying the failed work might succeed."""
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and exponential backoff schedule for one cell.

    ``max_attempts`` counts the first try: the default of 1 means "no
    retries", preserving historical fail-on-first-error behaviour.
    ``delay(attempt)`` is the pause after the ``attempt``-th failure
    (1-based): ``backoff_seconds * backoff_factor ** (attempt - 1)``,
    capped at ``max_backoff_seconds``.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ValidationError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """Policy giving ``retries`` retries on top of the first attempt."""
        return cls(max_attempts=retries + 1)

    def delay(self, attempt: int) -> float:
        """Backoff (seconds) after the ``attempt``-th failed attempt."""
        if attempt < 1:
            raise ValidationError(f"attempt is 1-based, got {attempt}")
        raw = self.backoff_seconds * self.backoff_factor ** (attempt - 1)
        return min(raw, self.max_backoff_seconds)


@contextmanager
def cell_deadline(seconds: Optional[float], label: str) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` if the block outlives ``seconds``.

    Enforcement uses ``signal.setitimer(ITIMER_REAL)``, which only
    works in the main thread of a process — exactly where cells run,
    both in-process (``jobs=1``) and in spawned pool workers.  When
    ``seconds`` is falsy, or interval timers are unavailable (Windows,
    non-main threads), the block runs without a deadline.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (
        not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        raise CellTimeoutError(
            f"cell {label} exceeded its {seconds:g}s wall-clock timeout"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
