"""Retry and timeout policy for pipeline cells.

Three small, composable pieces:

* :class:`RetryPolicy` — how many attempts a cell gets and how long to
  back off between them (exponential with a cap).  Pure arithmetic: the
  executor owns the actual ``sleep`` so tests can inject a recording
  fake and assert exact delays without waiting.
* :class:`Deadline` — a monotonic-clock wall-time budget with a
  cooperative :meth:`~Deadline.check` API, usable from any thread.
* :func:`cell_deadline` — a context manager enforcing a per-cell
  wall-clock budget.  On the main thread enforcement is preemptive via
  ``SIGALRM``/``setitimer`` (a sleeping cell is interrupted mid-block).
  Off the main thread — serve worker threads, thread pools — POSIX
  interval timers are unavailable, so enforcement degrades to
  *cooperative*: the yielded :class:`Deadline` raises from
  :meth:`~Deadline.check` calls sprinkled through the work (see
  :func:`check_deadline`), and the context manager performs a final
  check on normal exit so an over-budget block always raises.  The
  ``resilience.deadline_degraded`` counter ticks once per cooperative
  deadline so the loss of preemption is observable.

Classification lives here too: :func:`is_transient` decides whether an
exception is worth retrying (:class:`~repro.errors.TransientError` and
its subclasses, dead worker pools, connection hiccups) or deterministic
(everything else — a :class:`~repro.errors.ValidationError` will fail
identically on every attempt, so it fails fast).
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from concurrent.futures.process import BrokenProcessPool

from repro.errors import CellTimeoutError, TransientError, ValidationError
from repro.obs import get_obs

#: Exception types the resilience layer considers retryable.
TRANSIENT_TYPES = (TransientError, BrokenProcessPool, ConnectionError)


def is_transient(exc: BaseException) -> bool:
    """True when retrying the failed work might succeed."""
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and exponential backoff schedule for one cell.

    ``max_attempts`` counts the first try: the default of 1 means "no
    retries", preserving historical fail-on-first-error behaviour.
    ``delay(attempt)`` is the pause after the ``attempt``-th failure
    (1-based): ``backoff_seconds * backoff_factor ** (attempt - 1)``,
    capped at ``max_backoff_seconds``.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ValidationError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """Policy giving ``retries`` retries on top of the first attempt."""
        return cls(max_attempts=retries + 1)

    def delay(self, attempt: int) -> float:
        """Backoff (seconds) after the ``attempt``-th failed attempt."""
        if attempt < 1:
            raise ValidationError(f"attempt is 1-based, got {attempt}")
        raw = self.backoff_seconds * self.backoff_factor ** (attempt - 1)
        return min(raw, self.max_backoff_seconds)


class Deadline:
    """A wall-clock budget anchored to the monotonic clock.

    Usable from any thread: :meth:`check` raises
    :class:`~repro.errors.CellTimeoutError` once the budget is spent,
    :meth:`remaining` feeds bounded waits (lock/event timeouts), and
    :attr:`preemptive` records whether a ``SIGALRM`` timer also guards
    the block (main thread only) or enforcement is purely cooperative.
    """

    __slots__ = ("seconds", "label", "preemptive", "_expires_at")

    def __init__(self, seconds: float, label: str, preemptive: bool = False) -> None:
        self.seconds = float(seconds)
        self.label = label
        self.preemptive = preemptive
        self._expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left before expiry (negative once over budget)."""
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`CellTimeoutError` if the budget is spent."""
        if self.expired():
            raise CellTimeoutError(
                f"cell {self.label} exceeded its {self.seconds:g}s "
                "wall-clock timeout"
            )


_deadline_local = threading.local()


def _deadline_stack() -> "list[Deadline]":
    stack = getattr(_deadline_local, "stack", None)
    if stack is None:
        stack = _deadline_local.stack = []
    return stack


def current_deadline() -> Optional[Deadline]:
    """The innermost active :class:`Deadline` on this thread, if any."""
    stack = _deadline_stack()
    return stack[-1] if stack else None


def check_deadline() -> None:
    """Cooperative checkpoint: raise if this thread's deadline expired.

    A no-op when no deadline is active, so pipeline stages can call it
    unconditionally.  This is what gives non-main-thread callers (serve
    worker threads) real enforcement between stages.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check()


@contextmanager
def cell_deadline(seconds: Optional[float], label: str) -> Iterator[Optional[Deadline]]:
    """Raise :class:`CellTimeoutError` if the block outlives ``seconds``.

    On the main thread enforcement is preemptive:
    ``signal.setitimer(ITIMER_REAL)`` interrupts the block mid-flight.
    Off the main thread (serve worker threads, thread pools) interval
    timers are unavailable, so the deadline degrades to *cooperative*
    enforcement instead of silently running unbounded: the yielded
    :class:`Deadline` is also installed as the thread's
    :func:`current_deadline` so nested code can call
    :func:`check_deadline` between stages, and the context manager
    performs a final check on normal exit — an over-budget block raises
    even if it never checked.  The ``resilience.deadline_degraded``
    counter ticks once per cooperative deadline.

    When ``seconds`` is falsy the block runs without a deadline and the
    context manager yields ``None``.
    """
    if not seconds or seconds <= 0:
        yield None
        return
    preemptive = (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    deadline = Deadline(seconds, label, preemptive=preemptive)
    stack = _deadline_stack()
    stack.append(deadline)

    if not preemptive:
        get_obs().counter("resilience.deadline_degraded")
        try:
            yield deadline
            deadline.check()
        finally:
            stack.pop()
        return

    def _on_timeout(signum, frame):
        raise CellTimeoutError(
            f"cell {label} exceeded its {seconds:g}s wall-clock timeout"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield deadline
        deadline.check()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        stack.pop()
