"""Structured failure accounting for graceful-degradation sweeps.

Under ``--keep-going`` a sweep records every permanently-failed cell in
a :class:`FailureReport` instead of aborting; the report renders a loud
end-of-run summary and serializes to JSON so the sweep manifest can
persist it.  The invariant the report exists to uphold: **no code path
silently drops a cell** — a cell either completes or appears here.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List


@dataclass
class CellFailure:
    """One cell (or driver) that failed after its retry budget."""

    label: str
    error_type: str
    message: str
    attempts: int
    transient: bool
    traceback: str = ""

    def to_json(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CellFailure":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class FailureReport:
    """Every permanent failure one sweep accumulated."""

    failures: List[CellFailure] = field(default_factory=list)

    def add(self, failure: CellFailure) -> None:
        self.failures.append(failure)

    def __len__(self) -> int:
        return len(self.failures)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __iter__(self) -> Iterator[CellFailure]:
        return iter(self.failures)

    def labels(self) -> List[str]:
        return [failure.label for failure in self.failures]

    def summary_text(self) -> str:
        """Loud, human-readable end-of-run summary."""
        if not self.failures:
            return "failure report: 0 permanently failed cells"
        lines = [
            f"failure report: {len(self.failures)} permanently failed "
            f"cell(s) — results are PARTIAL"
        ]
        for failure in self.failures:
            kind = "transient, retries exhausted" if failure.transient else "deterministic"
            lines.append(
                f"  FAILED {failure.label}: {failure.error_type}: "
                f"{failure.message} ({kind}, {failure.attempts} attempt(s))"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {"failures": [failure.to_json() for failure in self.failures]}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FailureReport":
        return cls(
            failures=[
                CellFailure.from_json(item)  # type: ignore[arg-type]
                for item in payload.get("failures", [])
            ]
        )
