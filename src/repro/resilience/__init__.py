"""repro.resilience — keep multi-minute sweeps alive through faults.

A full-profile reproduction sweep is a long multi-process job; this
package is what lets it survive crashed workers, wall-clock blowups,
corrupted memo files and outright kills:

* **retry/timeout policy** (:class:`RetryPolicy`, :func:`cell_deadline`,
  :func:`is_transient`) — transient failures retry with exponential
  backoff, deterministic ones fail fast;
* **graceful degradation** (:class:`FailureReport`) — under
  ``--keep-going`` failed cells are recorded, not fatal, and the sweep
  ends with a loud summary;
* **checkpoint/resume** (:class:`SweepManifest`) — completed cells are
  journaled next to the memo cache so ``--resume`` skips finished work;
* **cache integrity** (:mod:`repro.resilience.integrity`) — memo files
  carry a schema-version + checksum envelope; damaged files are
  quarantined to ``<cache>/quarantine/`` and recomputed;
* **fault injection** (:class:`FaultPlan`, :func:`fault_point`) — a
  deterministic harness (``REPRO_FAULT_PLAN``) that exercises all of
  the above in tests and CI chaos jobs.

Observability: ``resilience.retries``, ``resilience.quarantined``,
``resilience.cells_failed`` (and friends) count every recovery action.
"""

from repro.resilience.checkpoint import MANIFEST_NAME, MANIFEST_VERSION, SweepManifest
from repro.resilience.failures import CellFailure, FailureReport
from repro.resilience.faults import (
    ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultRule,
    fault_point,
    install_injector,
    reset_faults,
)
from repro.resilience.integrity import (
    SCHEMA_VERSION,
    CacheScan,
    LegacyCacheEntry,
    load_or_quarantine,
    load_verified,
    payload_checksum,
    quarantine_file,
    quarantine_path,
    scan_cache,
    unwrap_document,
    wrap_payload,
)
from repro.resilience.policy import (
    Deadline,
    RetryPolicy,
    cell_deadline,
    check_deadline,
    current_deadline,
    is_transient,
)

__all__ = [
    "CacheScan",
    "CellFailure",
    "Deadline",
    "ENV_VAR",
    "FailureReport",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "LegacyCacheEntry",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "SweepManifest",
    "cell_deadline",
    "check_deadline",
    "current_deadline",
    "fault_point",
    "install_injector",
    "is_transient",
    "load_or_quarantine",
    "load_verified",
    "payload_checksum",
    "quarantine_file",
    "quarantine_path",
    "reset_faults",
    "scan_cache",
    "unwrap_document",
    "wrap_payload",
]
