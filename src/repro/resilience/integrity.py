"""Versioned, checksummed envelopes for memo cache files.

Every memo JSON the :class:`~repro.experiments.runner.ExperimentRunner`
writes is wrapped in an envelope::

    {
      "__repro_cache__": {"schema": 1, "checksum": "<sha256 of payload>"},
      "payload": { ... }
    }

The checksum covers the canonical serialization of the payload
(``sort_keys``, compact separators), so any truncation, bit-flip or
half-written file is detected on read.  :func:`load_or_quarantine` is
the tolerant read path: a damaged (or legacy unversioned) file is moved
to ``<cache>/quarantine/`` — never deleted, so it stays available for
debugging — the ``resilience.quarantined`` counter ticks, and the
caller recomputes instead of crashing.

:func:`scan_cache` backs the ``repro doctor`` CLI: a read-only sweep of
a cache directory classifying every memo file without touching it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CacheIntegrityError
from repro.obs import get_obs, logger

#: Bump when the envelope (not the payload) layout changes; readers
#: quarantine anything they do not recognize and recompute.
SCHEMA_VERSION = 1

ENVELOPE_KEY = "__repro_cache__"
QUARANTINE_DIRNAME = "quarantine"


class LegacyCacheEntry(CacheIntegrityError):
    """Valid JSON but no envelope: written before cache versioning.

    Treated exactly like damage on the read path (quarantine once,
    recompute) but reported separately by ``repro doctor``.
    """


def payload_checksum(payload: Dict[str, object]) -> str:
    """sha256 hex digest of the canonical JSON serialization."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def wrap_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Wrap a memo payload in the versioned checksum envelope."""
    return {
        ENVELOPE_KEY: {
            "schema": SCHEMA_VERSION,
            "checksum": payload_checksum(payload),
        },
        "payload": payload,
    }


def unwrap_document(
    document: object, source: str = "<memory>"
) -> Dict[str, object]:
    """Verify an envelope and return its payload.

    Raises :class:`CacheIntegrityError` naming ``source`` when the
    document is not an envelope (legacy unversioned entries included),
    carries an unknown schema version, or fails its checksum.
    """
    if not isinstance(document, dict) or ENVELOPE_KEY not in document:
        raise LegacyCacheEntry(
            f"{source}: missing cache envelope (legacy or foreign file)"
        )
    envelope = document[ENVELOPE_KEY]
    if not isinstance(envelope, dict):
        raise CacheIntegrityError(f"{source}: malformed cache envelope")
    schema = envelope.get("schema")
    if schema != SCHEMA_VERSION:
        raise CacheIntegrityError(
            f"{source}: cache schema version {schema!r} != {SCHEMA_VERSION}"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise CacheIntegrityError(f"{source}: cache payload is not an object")
    expected = envelope.get("checksum")
    actual = payload_checksum(payload)
    if expected != actual:
        raise CacheIntegrityError(
            f"{source}: cache checksum mismatch "
            f"(stored {str(expected)[:12]}…, computed {actual[:12]}…)"
        )
    return payload


def load_verified(path: str) -> Dict[str, object]:
    """Read + verify one memo file; any damage raises CacheIntegrityError."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CacheIntegrityError(
            f"{path}: unreadable cache file ({type(exc).__name__}: {exc})"
        ) from exc
    return unwrap_document(document, source=path)


def quarantine_path(cache_dir: str) -> str:
    return os.path.join(cache_dir, QUARANTINE_DIRNAME)


def quarantine_file(
    path: str, cache_dir: Optional[str] = None, reason: str = ""
) -> Optional[str]:
    """Move a damaged memo file into ``<cache>/quarantine/``.

    Returns the quarantined path (suffixed on name collisions), or
    ``None`` if the file vanished first.  Never raises on a missing
    source — a concurrent worker may have quarantined it already.
    """
    directory = cache_dir if cache_dir is not None else os.path.dirname(path)
    target_dir = quarantine_path(directory)
    name = os.path.basename(path)
    destination = os.path.join(target_dir, name)
    try:
        os.makedirs(target_dir, exist_ok=True)
        suffix = 0
        while os.path.exists(destination):
            suffix += 1
            destination = os.path.join(target_dir, f"{name}.{suffix}")
        os.replace(path, destination)
    except FileNotFoundError:
        return None
    except OSError as exc:  # pragma: no cover - disk-level failures
        logger.error("could not quarantine %s: %s", path, exc)
        return None
    get_obs().counter("resilience.quarantined")
    logger.warning(
        "quarantined damaged cache file %s -> %s%s",
        path,
        destination,
        f" ({reason})" if reason else "",
    )
    return destination


def load_or_quarantine(
    path: str, cache_dir: Optional[str] = None
) -> Optional[Dict[str, object]]:
    """Tolerant memo read: verified payload, or ``None`` after quarantine.

    This is the read path the runner uses — a truncated, bit-flipped or
    legacy unversioned memo file never crashes a sweep; it is moved
    aside exactly once and the cell recomputes.
    """
    try:
        return load_verified(path)
    except CacheIntegrityError as exc:
        quarantine_file(path, cache_dir=cache_dir, reason=str(exc))
        return None


#: Monotonic sequence making temp names unique *within* a process; the
#: pid/tid components make them unique across processes and threads.
_TMP_SEQ = itertools.count()


def unique_tmp_path(path: str) -> str:
    """A temp name no concurrent writer of ``path`` can collide with.

    A pid-only suffix is not enough: two threads of one process writing
    the same memo key (serve workers completing the same computation)
    would share the temp file and interleave, leaving a torn JSON
    document that gets quarantined on the next read.  The pid + thread
    id + per-process sequence triple is collision-free.
    """
    return (
        f"{path}.tmp.{os.getpid()}.{threading.get_ident()}.{next(_TMP_SEQ)}"
    )


def atomic_write_document(path: str, document: Dict[str, object]) -> None:
    """Write a JSON document atomically (unique tmp + ``os.replace``).

    Safe under concurrent same-key writers: every writer renames its
    own private temp file over ``path``, so readers only ever see a
    complete document (last writer wins).
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = unique_tmp_path(path)
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# -- doctor support -----------------------------------------------------

OK = "ok"
LEGACY = "legacy"
DAMAGED = "damaged"


@dataclass
class CacheScan:
    """Read-only integrity classification of one cache directory."""

    cache_dir: str
    ok: List[str] = field(default_factory=list)
    legacy: List[str] = field(default_factory=list)
    damaged: List[Tuple[str, str]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when every in-cache memo file verifies."""
        return not self.legacy and not self.damaged


def scan_cache(cache_dir: str) -> CacheScan:
    """Classify every ``*.json`` memo file under ``cache_dir``."""
    scan = CacheScan(cache_dir=cache_dir)
    if not os.path.isdir(cache_dir):
        return scan
    for name in sorted(os.listdir(cache_dir)):
        path = os.path.join(cache_dir, name)
        if not (name.endswith(".json") and os.path.isfile(path)):
            continue
        try:
            load_verified(path)
        except LegacyCacheEntry:
            scan.legacy.append(name)
        except CacheIntegrityError as exc:
            scan.damaged.append((name, str(exc)))
        else:
            scan.ok.append(name)
    qdir = quarantine_path(cache_dir)
    if os.path.isdir(qdir):
        scan.quarantined = sorted(os.listdir(qdir))
    return scan
