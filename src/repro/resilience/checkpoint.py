"""Checkpoint/resume manifest for experiment sweeps.

A sweep (``repro run-all`` / ``repro experiment``) writes a versioned
manifest — ``sweep-manifest.json``, wrapped in the same integrity
envelope as every other cache file — next to the memo cache.  The
manifest records every completed cell label and driver, so a killed
sweep restarted with ``--resume`` skips finished work without even
stat'ing the per-cell memo files, and the final
:class:`~repro.resilience.FailureReport` of a ``--keep-going`` run is
persisted for post-mortems.

The manifest content is deterministic (sorted labels, no timestamps),
so resumed and uninterrupted sweeps converge to byte-identical cache
directories.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.obs import get_obs, logger
from repro.resilience.failures import FailureReport
from repro.resilience.integrity import (
    atomic_write_document,
    load_or_quarantine,
    wrap_payload,
)

MANIFEST_NAME = "sweep-manifest.json"

#: Bump when the manifest payload layout changes; older manifests are
#: ignored (the sweep restarts from the per-cell memo files alone).
MANIFEST_VERSION = 1


@dataclass
class SweepManifest:
    """Persistent record of what one sweep has finished so far."""

    cache_dir: str
    profile: str
    completed_cells: Set[str] = field(default_factory=set)
    completed_drivers: Set[str] = field(default_factory=set)
    failures: FailureReport = field(default_factory=FailureReport)
    #: Run-ledger ids of every sweep that touched this manifest —
    #: provenance linking a resumed sweep back to the ``runs/<run_id>/``
    #: directories that produced it.  Additive: absent in old manifests.
    run_ids: Set[str] = field(default_factory=set)

    @staticmethod
    def path_for(cache_dir: str) -> str:
        return os.path.join(cache_dir, MANIFEST_NAME)

    @property
    def path(self) -> str:
        return self.path_for(self.cache_dir)

    # -- construction ---------------------------------------------------

    @classmethod
    def load(cls, cache_dir: str, profile: str) -> Optional["SweepManifest"]:
        """Load a resumable manifest, or ``None`` when unusable.

        A damaged manifest is quarantined (like any cache file); a
        version or profile mismatch is logged and ignored — resuming
        then falls back to the per-cell memo files, which stay the
        ground truth either way.
        """
        path = cls.path_for(cache_dir)
        if not os.path.exists(path):
            return None
        payload = load_or_quarantine(path, cache_dir=cache_dir)
        if payload is None:
            return None
        if payload.get("manifest_version") != MANIFEST_VERSION:
            logger.warning(
                "ignoring sweep manifest %s: version %r != %d",
                path,
                payload.get("manifest_version"),
                MANIFEST_VERSION,
            )
            return None
        if payload.get("profile") != profile:
            logger.warning(
                "ignoring sweep manifest %s: profile %r != %r",
                path,
                payload.get("profile"),
                profile,
            )
            return None
        return cls(
            cache_dir=cache_dir,
            profile=profile,
            completed_cells=set(payload.get("completed_cells", ())),
            completed_drivers=set(payload.get("completed_drivers", ())),
            failures=FailureReport.from_json(
                payload.get("failures", {})  # type: ignore[arg-type]
            ),
            run_ids=set(payload.get("run_ids", ())),
        )

    @classmethod
    def for_sweep(
        cls, cache_dir: str, profile: str, resume: bool = False
    ) -> "SweepManifest":
        """The manifest a new sweep should run against.

        ``resume=True`` reloads a prior manifest when one matches;
        otherwise (or when nothing usable exists) the sweep starts a
        fresh, empty manifest.
        """
        if resume:
            loaded = cls.load(cache_dir, profile)
            if loaded is not None:
                get_obs().counter(
                    "resilience.resume.cells_in_manifest",
                    len(loaded.completed_cells),
                )
                logger.info(
                    "resuming sweep: %d cells, %d drivers already complete",
                    len(loaded.completed_cells),
                    len(loaded.completed_drivers),
                )
                # A resumed sweep retries what previously failed.
                loaded.failures = FailureReport()
                return loaded
            logger.info("no resumable sweep manifest in %s; starting fresh", cache_dir)
        return cls(cache_dir=cache_dir, profile=profile)

    # -- progress -------------------------------------------------------

    def mark_cell(self, label: str) -> None:
        self.mark_cells([label])

    def mark_cells(self, labels) -> None:
        """Record completed cells and checkpoint to disk (one write)."""
        new = [label for label in labels if label not in self.completed_cells]
        if not new:
            return
        self.completed_cells.update(new)
        self.save()

    def mark_driver(self, name: str) -> None:
        if name in self.completed_drivers:
            return
        self.completed_drivers.add(name)
        self.save()

    def record_failures(self, report: FailureReport) -> None:
        self.failures = report
        self.save()

    def add_run_id(self, run_id: str) -> None:
        """Link this sweep to its run-ledger directory (provenance)."""
        if run_id in self.run_ids:
            return
        self.run_ids.add(run_id)
        self.save()

    def save(self) -> None:
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "profile": self.profile,
            "completed_cells": sorted(self.completed_cells),
            "completed_drivers": sorted(self.completed_drivers),
            "failures": self.failures.to_json(),
            "run_ids": sorted(self.run_ids),
        }
        atomic_write_document(self.path, wrap_payload(payload))
