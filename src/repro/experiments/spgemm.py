"""Extension: SpGEMM reordering sweep with cluster-wise computation.

Not a paper artifact — the SpGEMM workload axis from "Improving SpGEMM
Performance Through Matrix Reordering and Cluster-wise Computation"
(arXiv 2507.21253).  For every corpus matrix and reordering technique
the driver simulates the ``spgemm-csr`` (Gustavson CSR x CSR) kernel
under the default sequential schedule and under the paper's
cluster-wise schedule, which sorts each row-cluster's A entries by
column so repeated B-row walks coalesce in cache.  Two questions:

1. Does community reordering help SpGEMM the way it helps SpMV?
2. How much of the win can the clustered schedule recover *without*
   reordering (and how do the two compose)?
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner

TECHNIQUES = ("original", "degsort", "rcm", "rabbit", "rabbit++")
SCHEDULES = ("sequential", "clustered")


def run(
    profile: str = "bench",
    runner: Optional[ExperimentRunner] = None,
    matrices: Optional[Sequence[str]] = None,
    techniques: Sequence[str] = TECHNIQUES,
) -> ExperimentReport:
    base = runner if runner is not None else ExperimentRunner(profile)
    clustered = ExperimentRunner(
        base.profile,
        platform=base.platform,
        cache_dir=base.cache_dir,
        use_cache=base.use_cache,
        schedule="clustered",
        reorder_impl=base.reorder_impl,
    )
    names = list(matrices) if matrices is not None else base.matrices()[:6]

    rows = []
    means = {(s, t): [] for s in SCHEDULES for t in techniques}
    for matrix in names:
        row = [matrix]
        for technique in techniques:
            sequential = base.run(matrix, technique, kernel="spgemm-csr").normalized_traffic
            clust = clustered.run(matrix, technique, kernel="spgemm-csr").normalized_traffic
            row.extend([sequential, clust])
            means[("sequential", technique)].append(sequential)
            means[("clustered", technique)].append(clust)
        rows.append(row)

    headers = ["matrix"]
    for technique in techniques:
        headers.extend([f"{technique}-seq", f"{technique}-clu"])
    summary = {}
    for (schedule, technique), values in means.items():
        summary[f"mean_{technique}_{schedule}"] = arithmetic_mean(values)
    # Traffic the clustered schedule saves on the unordered matrix vs.
    # what the best reordering saves under the sequential schedule.
    if "original" in techniques:
        summary["mean_clustered_gain_original"] = arithmetic_mean(
            [
                seq / clu if clu else 1.0
                for seq, clu in zip(
                    means[("sequential", "original")], means[("clustered", "original")]
                )
            ]
        )
    return ExperimentReport(
        experiment="spgemm-sweep",
        title="SpGEMM (CSR x CSR) traffic: reordering x cluster-wise schedule",
        headers=headers,
        rows=rows,
        summary=summary,
    )
