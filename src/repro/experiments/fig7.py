"""Figure 7: DRAM traffic reduction of RABBIT++ over RABBIT.

The paper reports a maximum traffic reduction of 1.56x and mean 4.1%
over all inputs (7.7% over insularity < 0.95 inputs); the run-time
counterparts are 1.57x max and 5.3% / 9.7% means.  For insularity >=
0.95 matrices RABBIT++'s traffic is within 1% of RABBIT's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.fig3 import INSULARITY_SPLIT
from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, metrics_cell, run_cell

PAPER = {
    "max_traffic_reduction": 1.56,
    "mean_traffic_reduction_all": 1.041,
    "mean_traffic_reduction_low_ins": 1.077,
    "max_speedup": 1.57,
    "mean_speedup_all": 1.053,
    "mean_speedup_low_ins": 1.097,
}


def plan(profile: str = "full") -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    cells: List[Cell] = []
    for matrix in corpus_names(profile):
        cells.append(metrics_cell(matrix))
        cells.append(run_cell(matrix, "rabbit"))
        cells.append(run_cell(matrix, "rabbit++"))
    return cells


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    split: float = INSULARITY_SPLIT,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    rows = []
    traffic_all = []
    traffic_low = []
    speedup_all = []
    speedup_low = []
    for matrix in runner.matrices():
        metrics = runner.matrix_metrics(matrix)
        rabbit = runner.run(matrix, "rabbit", kernel="spmv-csr")
        rabbitpp = runner.run(matrix, "rabbit++", kernel="spmv-csr")
        traffic_reduction = rabbit.traffic_bytes / max(1, rabbitpp.traffic_bytes)
        speedup = rabbit.modeled_seconds / max(1e-30, rabbitpp.modeled_seconds)
        rows.append(
            [
                matrix,
                metrics.insularity,
                metrics.insular_node_fraction,
                traffic_reduction,
                speedup,
            ]
        )
        traffic_all.append(traffic_reduction)
        speedup_all.append(speedup)
        if metrics.insularity < split:
            traffic_low.append(traffic_reduction)
            speedup_low.append(speedup)
    rows.sort(key=lambda row: row[1])
    summary = {
        "max_traffic_reduction": max(traffic_all),
        "mean_traffic_reduction_all": arithmetic_mean(traffic_all),
        "max_speedup": max(speedup_all),
        "mean_speedup_all": arithmetic_mean(speedup_all),
    }
    if traffic_low:
        summary["mean_traffic_reduction_low_ins"] = arithmetic_mean(traffic_low)
        summary["mean_speedup_low_ins"] = arithmetic_mean(speedup_low)
    return ExperimentReport(
        experiment="fig7",
        title="RABBIT++ traffic reduction and speedup over RABBIT",
        headers=[
            "matrix",
            "insularity",
            "insular_fraction",
            "traffic_reduction",
            "speedup",
        ],
        rows=rows,
        summary=summary,
        paper_reference=PAPER,
    )
