"""Shared experiment machinery.

The experiment drivers all need the same pipeline:

    corpus matrix -> reordering permutation -> permuted matrix ->
    kernel trace -> cache simulation -> performance model

plus the matrix-structure metrics (insularity, skew, community stats)
computed from the RABBIT detection.  Both stages are deterministic, so
the runner memoizes simulation records and matrix metrics as JSON files
under ``.repro_cache/`` (permutations are additionally memoized
in-process).  Delete the cache directory to force recomputation.

The memo directory can be redirected without code changes by setting
the ``REPRO_CACHE_DIR`` environment variable (useful for CI and
multi-run jobs); an explicit ``cache_dir=`` argument still wins, and
``DEFAULT_CACHE_DIR`` (``./.repro_cache``) is the fallback.

Every pipeline stage runs inside an observability span (``load``,
``reorder``, ``permute``, ``mask``, ``trace``, ``cache-sim``,
``perf-model``, ``memo-load``, ``memo-store``) and memoization
effectiveness is exported as ``memo.<kind>.hit`` / ``memo.<kind>.miss``
counters — see :mod:`repro.obs` and the ``repro profile`` /
``repro cache-stats`` commands.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.community.modularity import modularity
from repro.errors import ValidationError
from repro.gpu.perf import model_run
from repro.gpu.specs import PlatformSpec, scaled_platform
from repro.graphs.corpus import corpus_names, load_graph
from repro.graphs.graph import Graph
from repro.metrics.community_stats import community_size_stats
from repro.metrics.insularity import insular_mask, insular_node_fraction, insularity
from repro.metrics.skew import degree_skew
from repro.obs import get_obs, logger
from repro.resilience.faults import fault_point
from repro.resilience.integrity import (
    atomic_write_document,
    load_or_quarantine,
    wrap_payload,
)
from repro.reorder.base import TimedReordering, reorder_with_timing
from repro.reorder.rabbit import RabbitOrder
from repro.reorder.registry import make_technique
from repro.sparse.mask import restrict_to_nodes
from repro.sparse.permute import permute_symmetric
from repro.trace.kernelspec import KernelSpec

KERNELS = ("spmv-csr", "spmv-coo", "spmm-csr-4", "spmm-csr-256", "spgemm-csr")
MASKS = ("none", "insular")

#: Default memo directory *name*, resolved against the working
#: directory at call time (not import time) by :func:`resolve_cache_dir`.
DEFAULT_CACHE_DIR = ".repro_cache"


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """Explicit argument, else ``$REPRO_CACHE_DIR``, else the default.

    The default is resolved against the *current* working directory on
    every call, so a ``chdir`` after import (pytest tmp dirs, pool
    workers, long-lived services) does not silently pin the memo to the
    import-time directory.
    """
    if cache_dir is not None:
        return cache_dir
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.getcwd(), DEFAULT_CACHE_DIR)


@dataclass
class RunRecord:
    """Flattened, JSON-serializable outcome of one simulated run."""

    matrix: str
    technique: str
    kernel: str
    policy: str
    mask: str
    platform: str
    normalized_traffic: float
    normalized_runtime: float
    traffic_bytes: int
    compulsory_bytes: int
    modeled_seconds: float
    ideal_seconds: float
    hit_rate: float
    dead_line_fraction: float
    accesses: int
    misses: int
    reorder_seconds: float

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "RunRecord":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class MatrixMetrics:
    """Structure metrics of one corpus matrix under RABBIT detection."""

    matrix: str
    n_nodes: int
    nnz: int
    avg_degree: float
    insularity: float
    insular_node_fraction: float
    skew: float
    modularity: float
    n_communities: int
    normalized_avg_community_size: float
    largest_community_fraction: float

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "MatrixMetrics":
        return cls(**payload)  # type: ignore[arg-type]


class ExperimentRunner:
    """Pipeline executor with on-disk memoization."""

    def __init__(
        self,
        profile: str = "full",
        platform: Optional[PlatformSpec] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        schedule: str = "sequential",
        reorder_impl: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.platform = platform if platform is not None else scaled_platform(profile)
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.use_cache = bool(use_cache)
        self.schedule = schedule
        #: Engine for techniques with a vectorized fast path
        #: (``None``/"auto"/"fast"/"reference"); permutations — and so
        #: memo keys and artifacts — are identical across engines, only
        #: the measured ``reorder_seconds`` differs.
        self.reorder_impl = reorder_impl
        self._permutations: Dict[Tuple[str, str], TimedReordering] = {}
        self._graphs: Dict[str, Graph] = {}
        self._detections: Dict[str, object] = {}

    # -- corpus ---------------------------------------------------------

    def matrices(self) -> "list[str]":
        return corpus_names(self.profile)

    def graph(self, matrix: str) -> Graph:
        if matrix not in self._graphs:
            with get_obs().span("load", matrix=matrix):
                self._graphs[matrix] = load_graph(matrix)
        return self._graphs[matrix]

    # -- permutations ---------------------------------------------------

    def permutation(self, matrix: str, technique: str) -> TimedReordering:
        """Compute (or recall) the permutation and its wall time."""
        key = (matrix, technique)
        if key not in self._permutations:
            graph = self.graph(matrix)
            self._permutations[key] = reorder_with_timing(
                make_technique(technique, impl=self.reorder_impl), graph
            )
            self._store_reorder_time(matrix, technique, self._permutations[key].seconds)
        return self._permutations[key]

    def reorder_seconds(self, matrix: str, technique: str) -> float:
        """Pre-processing time; prefers the persisted measurement."""
        cached = self._load_reorder_time(matrix, technique)
        if cached is not None:
            return cached
        return self.permutation(matrix, technique).seconds

    # -- community detection --------------------------------------------

    def detection(self, matrix: str):
        """RABBIT community detection, memoized per matrix.

        Detection is the most expensive pipeline stage and backs both
        :meth:`matrix_metrics` and the insular mask, so it must run at
        most once per matrix per runner — not once per masked
        (kernel, policy) cell.
        """
        if matrix not in self._detections:
            graph = self.graph(matrix)
            detector = RabbitOrder()
            detector.impl = self.reorder_impl
            with get_obs().span("detect", matrix=matrix):
                self._detections[matrix] = detector.detect(graph)
        return self._detections[matrix]

    # -- metrics --------------------------------------------------------

    def matrix_metrics(self, matrix: str) -> MatrixMetrics:
        """Insularity/skew/community statistics (RABBIT detection)."""
        obs = get_obs()
        path = self.metrics_cache_path(matrix)
        payload = self._load_payload(path, kind="metrics", matrix=matrix)
        if payload is not None:
            obs.counter("memo.metrics.hit")
            return MatrixMetrics.from_json(payload)
        obs.counter("memo.metrics.miss")
        graph = self.graph(matrix)
        with obs.span("metrics", matrix=matrix):
            assignment = self.detection(matrix).assignment
            stats = community_size_stats(assignment)
            metrics = MatrixMetrics(
                matrix=matrix,
                n_nodes=graph.n_nodes,
                nnz=graph.adjacency.nnz,
                avg_degree=graph.average_degree(),
                insularity=insularity(graph, assignment),
                insular_node_fraction=insular_node_fraction(graph, assignment),
                skew=degree_skew(graph),
                modularity=modularity(graph, assignment),
                n_communities=stats.n_communities,
                normalized_avg_community_size=stats.normalized_average_size,
                largest_community_fraction=stats.largest_fraction,
            )
        self._write_json(path, metrics.to_json())
        return metrics

    # -- simulation -----------------------------------------------------

    def run(
        self,
        matrix: str,
        technique: str,
        kernel: str = "spmv-csr",
        policy: str = "lru",
        mask: str = "none",
    ) -> RunRecord:
        """Simulate one (matrix, technique, kernel, policy, mask) cell."""
        if kernel not in KERNELS:
            raise ValidationError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if mask not in MASKS:
            raise ValidationError(f"mask must be one of {MASKS}, got {mask!r}")
        obs = get_obs()
        cache_key = self.run_cache_path(matrix, technique, kernel, policy, mask)
        payload = self._load_payload(
            cache_key, kind="run", matrix=matrix, technique=technique
        )
        if payload is not None:
            obs.counter("memo.run.hit")
            logger.debug(
                "memo hit: %s/%s/%s/%s/%s", matrix, technique, kernel, policy, mask
            )
            return RunRecord.from_json(payload)

        obs.counter("memo.run.miss")
        timed = self.permutation(matrix, technique)
        graph = self.graph(matrix)
        with obs.span("permute", matrix=matrix, technique=technique):
            permuted = permute_symmetric(graph.adjacency, timed.permutation)
        if mask == "insular":
            with obs.span("mask", matrix=matrix):
                permuted = self._apply_insular_mask(
                    matrix, permuted, timed.permutation
                )
        with obs.span("trace", matrix=matrix, kernel=kernel):
            trace = self._build_trace(permuted, kernel)
        platform = self._platform_for_kernel(kernel)
        run = model_run(trace, platform, policy=policy)
        record = RunRecord(
            matrix=matrix,
            technique=technique,
            kernel=kernel,
            policy=policy,
            mask=mask,
            platform=platform.name,
            normalized_traffic=run.normalized_traffic,
            normalized_runtime=run.normalized_runtime,
            traffic_bytes=run.traffic_bytes,
            compulsory_bytes=run.compulsory_bytes,
            modeled_seconds=run.modeled_seconds,
            ideal_seconds=run.ideal_seconds,
            hit_rate=run.stats.hit_rate,
            dead_line_fraction=run.stats.dead_line_fraction,
            accesses=run.stats.accesses,
            misses=run.stats.misses,
            reorder_seconds=timed.seconds,
        )
        self._write_json(cache_key, record.to_json())
        return record

    def _apply_insular_mask(
        self, matrix: str, permuted, permutation: np.ndarray
    ):
        """Keep only non-zeros connecting to insular nodes (Figure 6)."""
        graph = self.graph(matrix)
        mask_original_ids = insular_mask(graph, self.detection(matrix).assignment)
        mask_new_ids = np.zeros_like(mask_original_ids)
        mask_new_ids[permutation] = mask_original_ids
        return restrict_to_nodes(permuted, mask_new_ids, mode="either")

    def _platform_for_kernel(self, kernel: str) -> PlatformSpec:
        """Platform variant whose L2 matches the kernel's gather granule.

        The paper evaluates every kernel on the same physical 6 MB L2.
        For SpMV that cache holds ~1.5M 4-byte granules (up to 100% of
        the smallest corpus matrix), but for SpMM-CSR-256 it holds only
        ~6K 1-KiB B-rows — 0.4% of the nodes at best.  At 1/100 corpus
        scale a single scaled L2 cannot be in-regime for both granule
        sizes at once, so the modeled capacity is scaled by
        ``max(1, k // 16)``: larger caches for larger gathers, while
        keeping the B-row capacity a small fraction of the node count
        (the paper's capacity-starved SpMM regime; see DESIGN.md).
        """
        spec = KernelSpec.coerce(kernel)
        if spec.kind == "spmm-csr":
            factor = max(1, spec.k // 16)
            return dataclasses.replace(
                self.platform,
                name=f"{self.platform.name}-x{factor}",
                l2_capacity_bytes=self.platform.l2_capacity_bytes * factor,
            )
        return self.platform

    def _build_trace(self, permuted, kernel: str):
        return KernelSpec.coerce(kernel).build_trace(
            permuted, self.platform, schedule=self.schedule
        )

    # -- cache plumbing --------------------------------------------------

    def run_cache_path(
        self,
        matrix: str,
        technique: str,
        kernel: str = "spmv-csr",
        policy: str = "lru",
        mask: str = "none",
    ) -> str:
        """Memo file of one simulated cell (shared with repro.parallel)."""
        return self._cache_path(
            "run",
            f"{self.platform.name}|{self.schedule}|{matrix}|{technique}|{kernel}|{policy}|{mask}",
        )

    def metrics_cache_path(self, matrix: str) -> str:
        """Memo file of one matrix's structure metrics."""
        return self._cache_path("metrics", matrix)

    def _cache_path(self, kind: str, key: str) -> str:
        digest = hashlib.sha1(f"{kind}|{key}".encode("utf-8")).hexdigest()[:20]
        safe = key.replace("|", "_").replace("/", "-")[:80]
        return os.path.join(self.cache_dir, f"{kind}-{safe}-{digest}.json")

    def _write_json(self, path: str, payload: Dict[str, object]) -> None:
        """Persist one memo payload in a versioned checksum envelope.

        Reads verify the envelope (:meth:`_load_payload`); damaged or
        legacy files are quarantined and recomputed instead of crashing
        the sweep — see :mod:`repro.resilience.integrity`.  The write
        itself goes through :func:`atomic_write_document`, whose
        per-write unique temp names keep concurrent same-key writers
        (two serve threads completing the same computation) from
        tearing each other's files.
        """
        if not self.use_cache:
            return
        document = wrap_payload(payload)
        with get_obs().span("memo-store"):
            atomic_write_document(path, document)
        fault_point("memo.write", path=path)

    def _load_payload(
        self, path: str, kind: str = "", **tags: object
    ) -> Optional[Dict[str, object]]:
        """Verified memo payload, or ``None`` when absent or damaged.

        A file that fails its integrity check (truncated JSON, checksum
        or schema mismatch, legacy unversioned entry) is moved to
        ``<cache>/quarantine/`` and treated as a miss, so a corrupt
        cache degrades to recomputation instead of an exception.
        """
        if not self.use_cache or not os.path.exists(path):
            return None
        with get_obs().span("memo-load", kind=kind, **tags):
            return load_or_quarantine(path, cache_dir=self.cache_dir)

    def _reorder_time_path(self, matrix: str, technique: str) -> str:
        return self._cache_path("reorder-time", f"{matrix}|{technique}")

    def _store_reorder_time(self, matrix: str, technique: str, seconds: float) -> None:
        self._write_json(
            self._reorder_time_path(matrix, technique),
            {"matrix": matrix, "technique": technique, "seconds": seconds},
        )

    def _load_reorder_time(self, matrix: str, technique: str) -> Optional[float]:
        path = self._reorder_time_path(matrix, technique)
        payload = self._load_payload(path, kind="reorder-time", matrix=matrix)
        if payload is None:
            return None
        try:
            return float(payload["seconds"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            # Checksum-valid but structurally foreign (e.g. written by
            # a future payload layout): quarantine and re-measure.
            from repro.resilience.integrity import quarantine_file

            quarantine_file(path, cache_dir=self.cache_dir, reason="bad payload shape")
            return None
