"""Experiment harness: one driver per paper table/figure.

Every artifact of the paper's evaluation has a module here exposing
``run(profile=...) -> ExperimentReport``; the benchmarks under
``benchmarks/`` call these drivers and print the regenerated rows next
to the paper's published values (recorded in EXPERIMENTS.md).

The shared machinery lives in :mod:`repro.experiments.runner`
(simulation + permutation + metrics with on-disk memoization) and
:mod:`repro.experiments.report` (plain-text table rendering).
"""

from repro.experiments.runner import ExperimentRunner, MatrixMetrics, RunRecord
from repro.experiments.report import ExperimentReport, render_table

__all__ = [
    "ExperimentReport",
    "ExperimentRunner",
    "MatrixMetrics",
    "RunRecord",
    "render_table",
]
