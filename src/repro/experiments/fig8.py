"""Figure 8: headroom over each ordering — LRU vs. Belady traffic.

The paper compares the modeled L2's traffic under LRU against an
idealized L2 with Belady's optimal replacement.  The LRU-to-Belady gap
is smallest for RABBIT++ (7.6%), evidence that RABBIT++ is close to the
best achievable locality for SpMV on the platform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, run_cell

TECHNIQUES = ("random", "original", "degsort", "dbg", "gorder", "rabbit", "rabbit++")

PAPER = {"lru_over_belady_rabbit++": 1.076}


def plan(profile: str = "full", techniques: Sequence[str] = TECHNIQUES) -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    return [
        run_cell(matrix, technique, policy=policy)
        for technique in techniques
        for matrix in corpus_names(profile)
        for policy in ("lru", "belady")
    ]


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    techniques: Sequence[str] = TECHNIQUES,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    rows = []
    summary = {}
    for technique in techniques:
        lru_values = []
        opt_values = []
        for matrix in runner.matrices():
            lru = runner.run(matrix, technique, kernel="spmv-csr", policy="lru")
            opt = runner.run(matrix, technique, kernel="spmv-csr", policy="belady")
            lru_values.append(lru.normalized_traffic)
            opt_values.append(opt.normalized_traffic)
        mean_lru = arithmetic_mean(lru_values)
        mean_opt = arithmetic_mean(opt_values)
        gap = mean_lru / mean_opt
        rows.append([technique, mean_lru, mean_opt, gap])
        summary[f"lru_over_belady_{technique}"] = gap
    return ExperimentReport(
        experiment="fig8",
        title="DRAM traffic: LRU vs Belady replacement (normalized)",
        headers=["technique", "mean_traffic_lru", "mean_traffic_belady", "lru/belady"],
        rows=rows,
        summary=summary,
        paper_reference=PAPER,
    )
