"""Figure 4: percentage of insular nodes per matrix.

The paper's motivating observation for RABBIT++: even low-insularity
matrices have a substantial fraction of insular nodes (nodes only
referenced from within their community), so community structure is
exploitable even where RABBIT's aggregate benefit is small.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.experiments.fig3 import INSULARITY_SPLIT
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, metrics_cell


def plan(profile: str = "full") -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    return [metrics_cell(matrix) for matrix in corpus_names(profile)]


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    split: float = INSULARITY_SPLIT,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    entries = []
    for matrix in runner.matrices():
        metrics = runner.matrix_metrics(matrix)
        entries.append((metrics.insularity, matrix, metrics))
    entries.sort(key=lambda item: item[0])

    rows = []
    high = []
    low = []
    for ins, matrix, metrics in entries:
        rows.append([matrix, ins, metrics.insular_node_fraction, metrics.skew])
        (high if ins >= split else low).append(metrics.insular_node_fraction)

    summary = {}
    if high:
        summary["mean_insular_fraction_high_ins"] = arithmetic_mean(high)
    if low:
        summary["mean_insular_fraction_low_ins"] = arithmetic_mean(low)
    return ExperimentReport(
        experiment="fig4",
        title="Percentage of insular nodes (sorted by insularity)",
        headers=["matrix", "insularity", "insular_node_fraction", "skew"],
        rows=rows,
        summary=summary,
    )
