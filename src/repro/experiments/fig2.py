"""Figure 2: SpMV DRAM traffic (normalized to compulsory) by technique.

The paper's headline characterization: across the corpus, RANDOM
averages 3.36x compulsory traffic, ORIGINAL 1.54x, DEGSORT 1.61x,
DBG 1.48x, GORDER 1.29x and RABBIT 1.27x; the caption also reports the
run-time means (6.21x / 1.96x / 2.17x / 1.94x / 1.56x / 1.54x ideal).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, run_cell

TECHNIQUES = ("random", "original", "degsort", "dbg", "gorder", "rabbit")

PAPER_TRAFFIC = {
    "random": 3.36,
    "original": 1.54,
    "degsort": 1.61,
    "dbg": 1.48,
    "gorder": 1.29,
    "rabbit": 1.27,
}
PAPER_RUNTIME = {
    "random": 6.21,
    "original": 1.96,
    "degsort": 2.17,
    "dbg": 1.94,
    "gorder": 1.56,
    "rabbit": 1.54,
}


def plan(profile: str = "full", techniques: Sequence[str] = TECHNIQUES) -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    return [
        run_cell(matrix, technique)
        for matrix in corpus_names(profile)
        for technique in techniques
    ]


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    techniques: Sequence[str] = TECHNIQUES,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    headers = ["matrix"] + [f"{t}" for t in techniques]
    rows = []
    traffic = {t: [] for t in techniques}
    runtime = {t: [] for t in techniques}
    for matrix in runner.matrices():
        row: list = [matrix]
        for technique in techniques:
            record = runner.run(matrix, technique, kernel="spmv-csr")
            row.append(record.normalized_traffic)
            traffic[technique].append(record.normalized_traffic)
            runtime[technique].append(record.normalized_runtime)
        rows.append(row)

    summary = {}
    reference = {}
    for technique in techniques:
        summary[f"mean_traffic_{technique}"] = arithmetic_mean(traffic[technique])
        summary[f"mean_runtime_{technique}"] = arithmetic_mean(runtime[technique])
        if technique in PAPER_TRAFFIC:
            reference[f"mean_traffic_{technique}"] = PAPER_TRAFFIC[technique]
            reference[f"mean_runtime_{technique}"] = PAPER_RUNTIME[technique]
    # Observation 1: count of matrices within 10% of compulsory traffic
    # under the best technique.
    best_per_matrix = [
        min(traffic[t][i] for t in techniques) for i in range(len(rows))
    ]
    summary["matrices_within_10pct_of_ideal"] = float(
        sum(1 for value in best_per_matrix if value <= 1.10)
    )
    # Observation 4: matrices where RABBIT is the single best technique.
    if "rabbit" in techniques:
        summary["rabbit_best_count"] = float(
            sum(
                1
                for i in range(len(rows))
                if traffic["rabbit"][i] <= best_per_matrix[i] + 1e-12
            )
        )
    return ExperimentReport(
        experiment="fig2",
        title="SpMV DRAM traffic normalized to compulsory traffic",
        headers=headers,
        rows=rows,
        summary=summary,
        paper_reference=reference,
    )
