"""Plain-text experiment reports.

The paper's figures are bar charts over matrices and its tables are
small grids; both render faithfully as monospace tables, which is what
the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ValidationError


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} != header width {len(headers)}: {row!r}"
            )
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    baseline: float = 0.0,
) -> str:
    """Render a horizontal ASCII bar chart (the paper's figures are
    bar charts over matrices; this gives the drivers a figure-shaped
    output mode in a terminal).

    ``baseline`` subtracts a reference (e.g. 1.0 for ratios normalized
    to compulsory/ideal) so bars show the *excess* over the ideal.
    """
    if len(labels) != len(values):
        raise ValidationError(
            f"labels ({len(labels)}) and values ({len(values)}) differ in length"
        )
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    if not labels:
        return "(empty)"
    shifted = [max(0.0, float(v) - baseline) for v in values]
    peak = max(shifted) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value, magnitude in zip(labels, values, shifted):
        bar = "#" * max(0, round(magnitude / peak * width))
        lines.append(f"{label.ljust(label_width)}  {value:8.3f}  {bar}")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValidationError("geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ValidationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def arithmetic_mean(values: Sequence[float]) -> float:
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValidationError("mean of an empty sequence")
    return float(array.mean())


@dataclass
class ExperimentReport:
    """A regenerated artifact: rows plus headline summary numbers."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    #: Headline scalars, e.g. {"mean_traffic_rabbit": 1.27}.
    summary: Dict[str, float] = field(default_factory=dict)
    #: The paper's corresponding numbers, for side-by-side printing.
    paper_reference: Dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(render_table(self.headers, self.rows))
        if self.summary:
            lines.append("")
            lines.append("summary:")
            for key in sorted(self.summary):
                reference = self.paper_reference.get(key)
                suffix = f"   (paper: {reference:.3f})" if reference is not None else ""
                lines.append(f"  {key:40s} {self.summary[key]:9.3f}{suffix}")
        return "\n".join(lines)

    def to_figure(self, value_column: int = 1, baseline: float = 0.0) -> str:
        """Bar-chart rendering over one numeric column of the rows.

        Figure-style experiments (one bar per matrix) read better this
        way; ``value_column`` selects which column supplies the bar
        heights and column 0 provides the labels.
        """
        labels = [str(row[0]) for row in self.rows]
        values = [float(row[value_column]) for row in self.rows]
        header = f"== {self.experiment}: {self.title} =="
        return header + "\n" + render_bars(labels, values, baseline=baseline)
