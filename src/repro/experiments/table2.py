"""Table II: the RABBIT-modification design space.

Six orderings — {RABBIT, RABBIT+HUBSORT, RABBIT+HUBGROUP} x {without,
with insular-node grouping} — each summarized as mean SpMV run time
(normalized to ideal) over all matrices and over the two insularity
classes.  The paper's values:

                      without insular grouping | with insular grouping
                      ALL    I<.95  I>=.95     | ALL    I<.95  I>=.95
    RABBIT            1.54   1.81   1.25       | 1.49   1.70   1.25
    RABBIT+HUBSORT    1.63   1.89   1.35       | 1.57   1.86   1.26
    RABBIT+HUBGROUP   1.48   1.65   1.29       | 1.46   1.65   1.25
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.fig3 import INSULARITY_SPLIT
from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, metrics_cell, run_cell

#: (row label, registry technique name) per design-space cell.
CELLS: Tuple[Tuple[str, str, str], ...] = (
    ("RABBIT", "without-insular", "rabbit"),
    ("RABBIT", "with-insular", "rabbit+insular"),
    ("RABBIT+HUBSORT", "without-insular", "rabbit+hubsort"),
    ("RABBIT+HUBSORT", "with-insular", "rabbit+hubsort+insular"),
    ("RABBIT+HUBGROUP", "without-insular", "rabbit+hubgroup"),
    ("RABBIT+HUBGROUP", "with-insular", "rabbit++"),
)

PAPER = {
    "RABBIT|without-insular": (1.54, 1.81, 1.25),
    "RABBIT|with-insular": (1.49, 1.70, 1.25),
    "RABBIT+HUBSORT|without-insular": (1.63, 1.89, 1.35),
    "RABBIT+HUBSORT|with-insular": (1.57, 1.86, 1.26),
    "RABBIT+HUBGROUP|without-insular": (1.48, 1.65, 1.29),
    "RABBIT+HUBGROUP|with-insular": (1.46, 1.65, 1.25),
}


def plan(profile: str = "full") -> "List[Cell]":
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    cells: List[Cell] = []
    for matrix in corpus_names(profile):
        cells.append(metrics_cell(matrix))
        for _, _, technique in CELLS:
            cells.append(run_cell(matrix, technique))
    return cells


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    split: float = INSULARITY_SPLIT,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    matrices = runner.matrices()
    insularities = {m: runner.matrix_metrics(m).insularity for m in matrices}

    rows: List[List[object]] = []
    summary: Dict[str, float] = {}
    reference: Dict[str, float] = {}
    for row_label, column, technique in CELLS:
        all_values: List[float] = []
        low: List[float] = []
        high: List[float] = []
        for matrix in matrices:
            record = runner.run(matrix, technique, kernel="spmv-csr")
            all_values.append(record.normalized_runtime)
            (high if insularities[matrix] >= split else low).append(
                record.normalized_runtime
            )
        cell = f"{row_label}|{column}"
        means = (
            arithmetic_mean(all_values),
            arithmetic_mean(low) if low else float("nan"),
            arithmetic_mean(high) if high else float("nan"),
        )
        rows.append([row_label, column, technique, *means])
        for split_name, value, paper_value in zip(
            ("all", "low-ins", "high-ins"), means, PAPER[cell]
        ):
            key = f"{cell}|{split_name}"
            summary[key] = value
            reference[key] = paper_value
    return ExperimentReport(
        experiment="table2",
        title="Design space of RABBIT modifications (mean runtime / ideal)",
        headers=["row", "column", "technique", "ALL", "INS<split", "INS>=split"],
        rows=rows,
        summary=summary,
        paper_reference=reference,
    )
