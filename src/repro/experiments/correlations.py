"""Section V-B correlations: insularity vs. skew and community size.

The paper reports a Pearson correlation of −0.721 between insularity
and degree skew (hubs impede community isolation) and −0.472 between
insularity and average community size normalized to node count
(excluding the mawi giant-community outlier).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.fig3 import INSULARITY_SPLIT
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.metrics.correlation import pearson
from repro.parallel.cells import Cell, metrics_cell

PAPER = {
    "pearson_insularity_skew": -0.721,
    "pearson_insularity_commsize": -0.472,
    "mean_skew_high_insularity": 0.1637,
    "mean_skew_low_insularity": 0.4174,
}

#: Matrices whose largest community covers more than this node share
#: are giant-community outliers (the paper excludes mawi on the same
#: grounds before computing the community-size correlation).
GIANT_COMMUNITY_THRESHOLD = 0.90


def plan(profile: str = "full") -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    return [metrics_cell(matrix) for matrix in corpus_names(profile)]


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    split: float = INSULARITY_SPLIT,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    rows = []
    metrics_list = []
    for matrix in runner.matrices():
        metrics = runner.matrix_metrics(matrix)
        metrics_list.append(metrics)
        rows.append(
            [
                matrix,
                metrics.insularity,
                metrics.skew,
                metrics.normalized_avg_community_size,
                metrics.largest_community_fraction,
            ]
        )
    rows.sort(key=lambda row: row[1])

    insularities = [m.insularity for m in metrics_list]
    skews = [m.skew for m in metrics_list]
    summary = {"pearson_insularity_skew": pearson(insularities, skews)}

    regular = [
        m
        for m in metrics_list
        if m.largest_community_fraction < GIANT_COMMUNITY_THRESHOLD
    ]
    if len(regular) >= 2:
        summary["pearson_insularity_commsize"] = pearson(
            [m.insularity for m in regular],
            [m.normalized_avg_community_size for m in regular],
        )
    high_skews = [m.skew for m in metrics_list if m.insularity >= split]
    low_skews = [m.skew for m in metrics_list if m.insularity < split]
    if high_skews:
        summary["mean_skew_high_insularity"] = arithmetic_mean(high_skews)
    if low_skews:
        summary["mean_skew_low_insularity"] = arithmetic_mean(low_skews)
    return ExperimentReport(
        experiment="sec5-correlations",
        title="Insularity correlations (Section V-B)",
        headers=[
            "matrix",
            "insularity",
            "skew",
            "norm_avg_comm_size",
            "largest_comm_frac",
        ],
        rows=rows,
        summary=summary,
        paper_reference=PAPER,
    )
