"""Table IV: run time (normalized to ideal) across other cuSPARSE kernels.

SpMV-COO, SpMM-CSR with k = 4 and k = 256 dense columns, each over
RANDOM, ORIGINAL, RABBIT and RABBIT++ and split by insularity class.
The paper's values (ALL | I<0.95 | I>=0.95):

    SpMV-COO     RANDOM 5.37/4.94/5.97  ORIGINAL 1.84/2.10/1.55
                 RABBIT 1.49/1.73/1.23  RABBIT++ 1.40/1.55/1.23
    SpMM-CSR-4   RANDOM 29.3/32.2/26.1  ORIGINAL 5.97/8.92/3.58
                 RABBIT 4.31/7.39/2.18  RABBIT++ 3.79/5.85/2.18
    SpMM-CSR-256 RANDOM 139/197/75.1    ORIGINAL 26.8/43.8/11.0
                 RABBIT 20.3/50.3/3.91  RABBIT++ 18.7/44.0/3.95
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.fig3 import INSULARITY_SPLIT
from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, metrics_cell, run_cell

KERNELS = ("spmv-coo", "spmm-csr-4", "spmm-csr-256")
TECHNIQUES = ("random", "original", "rabbit", "rabbit++")

PAPER = {
    ("spmv-coo", "random"): (5.37, 4.94, 5.97),
    ("spmv-coo", "original"): (1.84, 2.10, 1.55),
    ("spmv-coo", "rabbit"): (1.49, 1.73, 1.23),
    ("spmv-coo", "rabbit++"): (1.40, 1.55, 1.23),
    ("spmm-csr-4", "random"): (29.33, 32.17, 26.07),
    ("spmm-csr-4", "original"): (5.97, 8.92, 3.58),
    ("spmm-csr-4", "rabbit"): (4.31, 7.39, 2.18),
    ("spmm-csr-4", "rabbit++"): (3.79, 5.85, 2.18),
    ("spmm-csr-256", "random"): (139.3, 196.6, 75.13),
    ("spmm-csr-256", "original"): (26.81, 43.79, 10.99),
    ("spmm-csr-256", "rabbit"): (20.32, 50.3, 3.91),
    ("spmm-csr-256", "rabbit++"): (18.7, 43.97, 3.95),
}


def plan(
    profile: str = "full",
    kernels: Sequence[str] = KERNELS,
    techniques: Sequence[str] = TECHNIQUES,
) -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    cells: List[Cell] = [metrics_cell(matrix) for matrix in corpus_names(profile)]
    for kernel in kernels:
        for technique in techniques:
            for matrix in corpus_names(profile):
                cells.append(run_cell(matrix, technique, kernel=kernel))
    return cells


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    kernels: Sequence[str] = KERNELS,
    techniques: Sequence[str] = TECHNIQUES,
    split: float = INSULARITY_SPLIT,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    matrices = runner.matrices()
    insularities = {m: runner.matrix_metrics(m).insularity for m in matrices}

    rows: List[List[object]] = []
    summary: Dict[str, float] = {}
    reference: Dict[str, float] = {}
    for kernel in kernels:
        for technique in techniques:
            all_values: List[float] = []
            low: List[float] = []
            high: List[float] = []
            for matrix in matrices:
                record = runner.run(matrix, technique, kernel=kernel)
                all_values.append(record.normalized_runtime)
                (high if insularities[matrix] >= split else low).append(
                    record.normalized_runtime
                )
            means = (
                arithmetic_mean(all_values),
                arithmetic_mean(low) if low else float("nan"),
                arithmetic_mean(high) if high else float("nan"),
            )
            rows.append([kernel, technique, *means])
            paper_values = PAPER.get((kernel, technique))
            for split_name, value, paper_value in zip(
                ("all", "low-ins", "high-ins"),
                means,
                paper_values if paper_values else (None, None, None),
            ):
                key = f"{kernel}|{technique}|{split_name}"
                summary[key] = value
                if paper_value is not None:
                    reference[key] = paper_value
    return ExperimentReport(
        experiment="table4",
        title="Run time normalized to ideal across kernels",
        headers=["kernel", "technique", "ALL", "INS<split", "INS>=split"],
        rows=rows,
        summary=summary,
        paper_reference=reference,
    )
