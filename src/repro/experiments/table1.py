"""Table I: evaluation-platform specifications."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.gpu.specs import A6000, scaled_platform


def run(profile: str = "full") -> ExperimentReport:
    """Render the paper's Table I next to the scaled simulation platform."""
    scaled = scaled_platform(profile)
    rows = []
    for spec in (A6000, scaled):
        rows.append(
            [
                spec.name,
                f"{spec.l2_capacity_bytes // 1024} KiB",
                f"{spec.line_bytes} B",
                spec.ways,
                f"{spec.peak_bandwidth_gbs:.0f} GB/s",
                f"{spec.achievable_bandwidth_gbs:.0f} GB/s",
                f"{spec.peak_compute_tflops:.1f} TFLOPS",
            ]
        )
    return ExperimentReport(
        experiment="table1",
        title="Platform specifications (paper Table I + scaled platform)",
        headers=[
            "platform",
            "L2",
            "line",
            "ways",
            "peak BW",
            "achievable BW",
            "SP compute",
        ],
        rows=rows,
        summary={
            "l2_scale_factor": A6000.l2_capacity_bytes / scaled.l2_capacity_bytes,
        },
    )
