"""Figure 6: DRAM traffic of the insular sub-matrix.

After the first RABBIT++ modification (insular-node grouping), SpMV
restricted to the non-zeros that connect to insular nodes achieves
essentially compulsory traffic — the paper plots values hugging 1.0
(its y-axis starts at 0.7; wiki-Talk lands *below* 1.0 only because the
paper's analytic formula over-counts empty rows, a bias our
distinct-lines compulsory measurement does not have).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, metrics_cell, run_cell

TECHNIQUE = "rabbit+insular"


def plan(profile: str = "full") -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    cells: List[Cell] = []
    for matrix in corpus_names(profile):
        cells.append(metrics_cell(matrix))
        cells.append(run_cell(matrix, TECHNIQUE, mask="insular"))
    return cells


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    rows = []
    values = []
    for matrix in runner.matrices():
        metrics = runner.matrix_metrics(matrix)
        record = runner.run(matrix, TECHNIQUE, kernel="spmv-csr", mask="insular")
        rows.append(
            [
                matrix,
                metrics.insularity,
                metrics.insular_node_fraction,
                record.normalized_traffic,
            ]
        )
        values.append(record.normalized_traffic)
    rows.sort(key=lambda row: row[1])
    return ExperimentReport(
        experiment="fig6",
        title="Normalized DRAM traffic for the insular sub-matrix",
        headers=["matrix", "insularity", "insular_fraction", "traffic/compulsory"],
        rows=rows,
        summary={
            "mean_insular_submatrix_traffic": arithmetic_mean(values),
            "max_insular_submatrix_traffic": max(values),
        },
        paper_reference={"mean_insular_submatrix_traffic": 1.0},
    )
