"""Figure 9: matrix-reordering cost as matrix size grows.

The paper shows GORDER's pre-processing time scaling far worse than
RABBIT's or RABBIT++'s, then quantifies amortization: starting from a
RANDOM order, GORDER needs ~7467 SpMV iterations to pay for itself vs.
741 for RABBIT and 1047 for RABBIT++.

This driver times the techniques on a fixed-family size sweep (DC-SBM
instances of doubling size) and computes amortization iterations from
the performance model's kernel times.  The Python-vs-C++ substrate
inflates absolute iteration counts (the reordering runs in pure
Python); the ordering GORDER >> RABBIT++ > RABBIT is the reproducible
shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.gpu.amortization import amortization_iterations
from repro.gpu.perf import model_run
from repro.graphs.generators import dcsbm
from repro.graphs.graph import Graph
from repro.reorder.base import reorder_with_timing
from repro.reorder.registry import make_technique
from repro.sparse.convert import coo_to_csr
from repro.sparse.permute import permute_symmetric
from repro.trace.kernel_traces import spmv_csr_trace

TECHNIQUES = ("gorder", "rabbit", "rabbit++")

PAPER = {
    "amortization_iterations_gorder": 7467.0,
    "amortization_iterations_rabbit": 741.0,
    "amortization_iterations_rabbit++": 1047.0,
}

#: Node counts of the sweep family (doubling sizes).
SWEEP_SIZES = {
    "full": (2048, 4096, 8192, 16384, 32768),
    "bench": (1024, 2048, 4096, 8192),
    "test": (256, 512, 1024),
}


def plan(profile: str = "full"):
    """No shareable pipeline cells: the size sweep runs on generated
    (non-corpus) graphs with its own ``fig9-*`` memo entries, so the
    parallel executor has nothing to precompute here."""
    return []


def _sweep_graph(n: int) -> Graph:
    matrix = dcsbm(n, max(4, n // 256), 12.0, mu=0.3, theta_exponent=0.8, seed=9000 + n)
    return Graph(coo_to_csr(matrix))


def _sweep_cache_path(runner: ExperimentRunner, platform, n: int, technique: str) -> str:
    return runner._cache_path("fig9", f"{platform.name}|{n}|{technique}")


def _sweep_point(runner: ExperimentRunner, platform, n: int, technique: str):
    """Load a cached sweep measurement, or None.

    Reads through the runner's verified loader, so a damaged sweep memo
    is quarantined and re-measured instead of crashing the driver.
    """
    path = _sweep_cache_path(runner, platform, n, technique)
    point = runner._load_payload(path, kind="fig9")
    if point is None:
        return None
    if point["iterations"] is None:
        point["iterations"] = float("inf")
    return point


def _measure_sweep_point(
    runner: ExperimentRunner, platform, n: int, graph: Graph, technique: str
):
    """Time one (size, technique) sweep cell and persist it."""
    random_perm = make_technique("random").compute(graph)
    random_csr = permute_symmetric(graph.adjacency, random_perm)
    random_run = model_run(
        spmv_csr_trace(random_csr, line_bytes=platform.line_bytes), platform
    )
    timed = reorder_with_timing(
        make_technique(technique, impl=runner.reorder_impl), graph
    )
    reordered = permute_symmetric(graph.adjacency, timed.permutation)
    reordered_run = model_run(
        spmv_csr_trace(reordered, line_bytes=platform.line_bytes), platform
    )
    iterations = amortization_iterations(
        timed.seconds, random_run.modeled_seconds, reordered_run.modeled_seconds
    )
    point = {
        "n": n,
        "nnz": int(graph.adjacency.nnz),
        "technique": technique,
        "seconds": timed.seconds,
        "iterations": None if iterations == float("inf") else iterations,
    }
    runner._write_json(_sweep_cache_path(runner, platform, n, technique), point)
    point["iterations"] = iterations
    return point


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    techniques: Sequence[str] = TECHNIQUES,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    sizes = SWEEP_SIZES.get(profile, SWEEP_SIZES["full"])
    platform = runner.platform

    rows = []
    iteration_sums = {t: 0.0 for t in techniques}
    counted = {t: 0 for t in techniques}
    for n in sizes:
        graph = None  # built lazily; cached sweep points never need it
        row: list = [n]
        nnz_cell = None
        for technique_name in techniques:
            point = _sweep_point(runner, platform, n, technique_name)
            if point is None:
                if graph is None:
                    graph = _sweep_graph(n)
                point = _measure_sweep_point(
                    runner, platform, n, graph, technique_name
                )
            nnz_cell = point["nnz"]
            iterations = point["iterations"]
            row.extend([point["seconds"], iterations])
            if iterations != float("inf"):
                iteration_sums[technique_name] += iterations
                counted[technique_name] += 1
        row.insert(1, nnz_cell)
        rows.append(row)

    headers = ["n", "nnz"]
    for technique_name in techniques:
        headers.extend([f"{technique_name}_sec", f"{technique_name}_iters"])
    summary = {}
    for technique_name in techniques:
        if counted[technique_name]:
            summary[f"amortization_iterations_{technique_name}"] = (
                iteration_sums[technique_name] / counted[technique_name]
            )
    # Scaling shape: cost ratio between largest and smallest sweep point.
    if len(rows) >= 2:
        for offset, technique_name in enumerate(techniques):
            column = 2 + 2 * offset
            small = max(1e-9, float(rows[0][column]))
            summary[f"cost_growth_{technique_name}"] = float(rows[-1][column]) / small
    return ExperimentReport(
        experiment="fig9",
        title="Reordering cost vs matrix size, with amortization iterations",
        headers=headers,
        rows=rows,
        summary=summary,
        paper_reference=PAPER,
    )
