"""Extension: does RABBIT's *hierarchy* matter, or only its communities?

Rabbit Order's authors designed the dendrogram-DFS ordering to map
nested sub-communities onto multi-level caches (paper Section V-A).
This ablation makes that claim measurable: simulate a two-level
L1 -> L2 hierarchy and compare

* RABBIT — hierarchical ordering (dendrogram DFS);
* LOUVAIN — flat community ordering (communities contiguous, no
  intra-community structure);
* RANDOM — no structure.

Expectation: RABBIT and LOUVAIN tie at the L2 (both make communities
contiguous) but RABBIT's nested sub-communities win at the small L1,
where only the innermost community level fits.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.cache.hierarchy import simulate_hierarchy
from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.sparse.permute import permute_symmetric
from repro.trace.kernel_traces import spmv_csr_trace

TECHNIQUES = ("random", "louvain", "rabbit")

#: L1 capacity as a fraction of the platform L2.
L1_FRACTION = 1 / 8


def run(
    profile: str = "bench",
    runner: Optional[ExperimentRunner] = None,
    matrices: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    platform = runner.platform
    l2_config = platform.cache_config()
    l1_config = dataclasses.replace(
        l2_config,
        capacity_bytes=max(
            l2_config.line_bytes * l2_config.ways,
            int(l2_config.capacity_bytes * L1_FRACTION),
        ),
        ways=min(l2_config.ways, 8),
    )
    names = list(matrices) if matrices is not None else runner.matrices()[:6]

    rows = []
    l1_rates = {t: [] for t in TECHNIQUES}
    l2_traffic = {t: [] for t in TECHNIQUES}
    for matrix in names:
        graph = runner.graph(matrix)
        row = [matrix]
        for technique in TECHNIQUES:
            timed = runner.permutation(matrix, technique)
            permuted = permute_symmetric(graph.adjacency, timed.permutation)
            trace = spmv_csr_trace(permuted, line_bytes=platform.line_bytes)
            stats = simulate_hierarchy(trace.lines, l1_config, l2_config)
            row.extend([stats.l1_hit_rate, stats.dram_traffic_bytes])
            l1_rates[technique].append(stats.l1_hit_rate)
            l2_traffic[technique].append(stats.dram_traffic_bytes)
        rows.append(row)

    headers = ["matrix"]
    for technique in TECHNIQUES:
        headers.extend([f"{technique}-l1hit", f"{technique}-dram"])
    summary = {}
    for technique in TECHNIQUES:
        summary[f"mean_l1_hit_{technique}"] = arithmetic_mean(l1_rates[technique])
    return ExperimentReport(
        experiment="ablation-hierarchy",
        title="Two-level cache: hierarchical (RABBIT) vs flat (LOUVAIN) ordering",
        headers=headers,
        rows=rows,
        summary=summary,
    )
