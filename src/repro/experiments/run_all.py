"""Run every experiment driver and collect the reports."""

from __future__ import annotations

import traceback
from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.resilience import (
    CellFailure,
    FailureReport,
    RetryPolicy,
    SweepManifest,
    is_transient,
)
from repro.experiments import (
    correlations,
    corpus_report,
    fig2,
    fig3,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    hierarchy_ablation,
    schedule_ablation,
    sensitivity,
    spgemm,
    table1,
    table2,
    table3,
    table4,
    tiling,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.obs import ProgressReporter, format_span_totals, get_obs, logger
from repro.parallel import driver_plan, precompute

DRIVERS: Dict[str, Callable[..., ExperimentReport]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "sec5-correlations": correlations.run,
    "table2": table2.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table3": table3.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table4": table4.run,
}

#: Extensions beyond the paper (DESIGN.md Section 7); runnable by name
#: but excluded from :func:`run_all`'s paper-artifact sweep.
ABLATIONS: Dict[str, Callable[..., ExperimentReport]] = {
    "corpus-report": corpus_report.run,
    "ablation-cache-sensitivity": sensitivity.run,
    "ablation-schedule": schedule_ablation.run,
    "ablation-hierarchy": hierarchy_ablation.run,
    "ablation-tiling": tiling.run,
    "spgemm-sweep": spgemm.run,
}


def run_experiment(
    name: str, profile: str = "full", runner: Optional[ExperimentRunner] = None
) -> ExperimentReport:
    try:
        driver = DRIVERS.get(name) or ABLATIONS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {sorted(DRIVERS) + sorted(ABLATIONS)}"
        ) from None
    obs = get_obs()
    logger.info("experiment %s: starting (profile=%s)", name, profile)
    with obs.span(f"experiment.{name}", profile=profile) as span:
        if name == "table1":
            report = driver(profile=profile)
        else:
            report = driver(profile=profile, runner=runner)
    if span is not None:
        logger.info("experiment %s: done in %.3fs", name, span.seconds)
    return report


def run_all(
    profile: str = "full",
    progress: Optional[ProgressReporter] = None,
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    keep_going: bool = False,
    resume: bool = False,
) -> List[ExperimentReport]:
    """Run every driver, sharing one runner (and its caches).

    Pass a :class:`ProgressReporter` to get per-driver progress lines;
    ``None`` keeps the sweep silent (the library default).

    ``jobs > 1`` first precomputes every driver's pipeline cells in
    that many worker processes sharing the on-disk memo (see
    :mod:`repro.parallel`), then runs the drivers in-process as memo
    hits; ``jobs=1`` is exactly the historical sequential path.

    Resilience: the sweep checkpoints completed cells and drivers to a
    versioned manifest next to the memo cache, so ``resume=True``
    skips work a killed sweep already finished.  ``retry`` and
    ``cell_timeout`` govern the precompute phase (see
    :func:`repro.parallel.execute_cells`); with ``keep_going=True`` a
    failing driver is recorded in a :class:`FailureReport` (logged
    loudly at the end, persisted in the manifest) instead of aborting
    the remaining drivers, and the partial report list is returned.
    """
    runner = ExperimentRunner(profile)
    manifest = SweepManifest.for_sweep(runner.cache_dir, profile, resume=resume)
    pending_cell_failures = {}
    if jobs > 1:
        stats = precompute(
            DRIVERS,
            runner,
            jobs,
            retry=retry,
            cell_timeout=cell_timeout,
            keep_going=keep_going,
            manifest=manifest,
        )
        # Provisional: the in-process driver replay recomputes any
        # missing cell, so a precompute failure only sticks if the
        # driver that needs the cell fails too.
        if stats is not None:
            pending_cell_failures = {f.label: f for f in stats.failures}
    reports = []
    failures = FailureReport()
    for name in DRIVERS:
        try:
            reports.append(run_experiment(name, profile=profile, runner=runner))
        except Exception as exc:
            if not keep_going:
                raise
            get_obs().counter("resilience.drivers_failed")
            failures.add(
                CellFailure(
                    label=f"driver:{name}",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=1,
                    transient=is_transient(exc),
                    traceback=traceback.format_exc(),
                )
            )
            logger.error("driver %s failed (continuing): %s", name, exc)
            continue
        manifest.mark_driver(name)
        if pending_cell_failures:
            for cell in driver_plan(DRIVERS[name], profile):
                pending_cell_failures.pop(cell.label(), None)
        if progress is not None:
            progress.update(name)
    if progress is not None:
        progress.finish()
    for failure in pending_cell_failures.values():
        failures.add(failure)
    if failures:
        manifest.record_failures(failures)
        logger.error("%s", failures.summary_text())
    return reports


def timing_summary() -> str:
    """Where the time went: span totals from the active instrumentation.

    Returns an aligned stage/calls/seconds/share table; nested spans
    (``experiment.*`` wraps the per-stage spans) overlap, so the share
    column is per-row against the largest span, not additive.
    """
    return format_span_totals(get_obs().span_totals())
