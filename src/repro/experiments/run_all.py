"""Run every experiment driver and collect the reports."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments import (
    correlations,
    corpus_report,
    fig2,
    fig3,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    hierarchy_ablation,
    schedule_ablation,
    sensitivity,
    table1,
    table2,
    table3,
    table4,
    tiling,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.obs import ProgressReporter, format_span_totals, get_obs, logger
from repro.parallel import precompute

DRIVERS: Dict[str, Callable[..., ExperimentReport]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "sec5-correlations": correlations.run,
    "table2": table2.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table3": table3.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table4": table4.run,
}

#: Extensions beyond the paper (DESIGN.md Section 7); runnable by name
#: but excluded from :func:`run_all`'s paper-artifact sweep.
ABLATIONS: Dict[str, Callable[..., ExperimentReport]] = {
    "corpus-report": corpus_report.run,
    "ablation-cache-sensitivity": sensitivity.run,
    "ablation-schedule": schedule_ablation.run,
    "ablation-hierarchy": hierarchy_ablation.run,
    "ablation-tiling": tiling.run,
}


def run_experiment(
    name: str, profile: str = "full", runner: Optional[ExperimentRunner] = None
) -> ExperimentReport:
    try:
        driver = DRIVERS.get(name) or ABLATIONS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {sorted(DRIVERS) + sorted(ABLATIONS)}"
        ) from None
    obs = get_obs()
    logger.info("experiment %s: starting (profile=%s)", name, profile)
    with obs.span(f"experiment.{name}", profile=profile) as span:
        if name == "table1":
            report = driver(profile=profile)
        else:
            report = driver(profile=profile, runner=runner)
    if span is not None:
        logger.info("experiment %s: done in %.3fs", name, span.seconds)
    return report


def run_all(
    profile: str = "full",
    progress: Optional[ProgressReporter] = None,
    jobs: int = 1,
) -> List[ExperimentReport]:
    """Run every driver, sharing one runner (and its caches).

    Pass a :class:`ProgressReporter` to get per-driver progress lines;
    ``None`` keeps the sweep silent (the library default).

    ``jobs > 1`` first precomputes every driver's pipeline cells in
    that many worker processes sharing the on-disk memo (see
    :mod:`repro.parallel`), then runs the drivers in-process as memo
    hits; ``jobs=1`` is exactly the historical sequential path.
    """
    runner = ExperimentRunner(profile)
    if jobs > 1:
        precompute(DRIVERS, runner, jobs)
    reports = []
    for name in DRIVERS:
        reports.append(run_experiment(name, profile=profile, runner=runner))
        if progress is not None:
            progress.update(name)
    if progress is not None:
        progress.finish()
    return reports


def timing_summary() -> str:
    """Where the time went: span totals from the active instrumentation.

    Returns an aligned stage/calls/seconds/share table; nested spans
    (``experiment.*`` wraps the per-stage spans) overlap, so the share
    column is per-row against the largest span, not additive.
    """
    return format_span_totals(get_obs().span_totals())
