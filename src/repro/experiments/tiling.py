"""Extension: reordering vs. column tiling (the paper's Section VII
future-work item).

Sweeps the tile count for the column-tiled SpMV execution model and
compares a RANDOM-ordered matrix against a RABBIT++-ordered one.
Expectations:

* for RANDOM order, tiling reduces DRAM traffic substantially (the
  irregular range shrinks to a tile) until the Y/row-offset
  re-streaming overhead dominates — a U-shaped curve;
* for RABBIT++ order the curve is much flatter: the working set is
  already cache-shaped, so tiling has far less to offer — on
  high-insularity matrices it only adds overhead, while on
  low-insularity (skew-dominated) matrices modest tiling still helps;
* at every tile count the RABBIT++-ordered matrix moves fewer bytes
  than the RANDOM-ordered one — tiling and reordering compose, and
  reordering needs no application changes (the paper's versatility
  argument, Section VII).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.gpu.perf import model_run
from repro.sparse.permute import permute_symmetric
from repro.trace.tiled import spmv_csr_tiled_trace

TILE_COUNTS = (1, 2, 4, 8, 16, 32)
TECHNIQUES = ("random", "rabbit++")


def run(
    profile: str = "bench",
    runner: Optional[ExperimentRunner] = None,
    tile_counts: Sequence[int] = TILE_COUNTS,
    matrices: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    platform = runner.platform
    names = list(matrices) if matrices is not None else runner.matrices()[:4]

    permuted = {}
    for matrix in names:
        graph = runner.graph(matrix)
        for technique in TECHNIQUES:
            timed = runner.permutation(matrix, technique)
            permuted[matrix, technique] = permute_symmetric(
                graph.adjacency, timed.permutation
            )

    rows = []
    curves = {t: [] for t in TECHNIQUES}
    for n_tiles in tile_counts:
        row = [n_tiles]
        for technique in TECHNIQUES:
            values = []
            for matrix in names:
                trace = spmv_csr_tiled_trace(
                    permuted[matrix, technique],
                    n_tiles,
                    line_bytes=platform.line_bytes,
                )
                run_model = model_run(trace, platform)
                # Normalize against the *untiled* compulsory baseline so
                # the tiled storage overhead shows up as real cost.
                values.append(run_model.traffic_bytes)
            row.append(arithmetic_mean(values))
            curves[technique].append(row[-1])
        rows.append(row)

    summary = {}
    for technique in TECHNIQUES:
        curve = curves[technique]
        best_index = min(range(len(curve)), key=curve.__getitem__)
        summary[f"best_tiles_{technique}"] = float(tile_counts[best_index])
        summary[f"tiling_gain_{technique}"] = curve[0] / curve[best_index]
    summary["best_random_tiled_over_rabbitpp_untiled"] = min(
        curves["random"]
    ) / curves["rabbit++"][0]
    return ExperimentReport(
        experiment="ablation-tiling",
        title="Column tiling vs reordering (mean DRAM traffic bytes)",
        headers=["n_tiles"] + [f"{t}-bytes" for t in TECHNIQUES],
        rows=rows,
        summary=summary,
    )
