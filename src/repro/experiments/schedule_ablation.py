"""Extension: row-schedule ablation for the trace model.

Not a paper artifact — an ablation DESIGN.md calls out.  The default
trace walks rows sequentially, matching the row-major traversal the
paper's simulator validated against real-GPU counters.  The
``interleaved`` schedule deals rows round-robin across partitions,
mimicking many SMs walking their chunks concurrently.  The question
the ablation answers: do the paper's conclusions depend on the
schedule?  Expectation: interleaving raises absolute traffic for every
ordering (the active window spans many chunks) but preserves the
ordering *ranking* — RABBIT++ <= RABBIT <= RANDOM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner

TECHNIQUES = ("random", "rabbit", "rabbit++")


def run(
    profile: str = "bench",
    runner: Optional[ExperimentRunner] = None,
    matrices: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    base = runner if runner is not None else ExperimentRunner(profile)
    interleaved = ExperimentRunner(
        profile,
        platform=base.platform,
        cache_dir=base.cache_dir,
        use_cache=base.use_cache,
        schedule="interleaved",
    )
    names = list(matrices) if matrices is not None else base.matrices()[:6]

    rows = []
    means = {("sequential", t): [] for t in TECHNIQUES}
    means.update({("interleaved", t): [] for t in TECHNIQUES})
    for matrix in names:
        row = [matrix]
        for technique in TECHNIQUES:
            sequential = base.run(matrix, technique).normalized_traffic
            inter = interleaved.run(matrix, technique).normalized_traffic
            row.extend([sequential, inter])
            means[("sequential", technique)].append(sequential)
            means[("interleaved", technique)].append(inter)
        rows.append(row)

    headers = ["matrix"]
    for technique in TECHNIQUES:
        headers.extend([f"{technique}-seq", f"{technique}-int"])
    summary = {}
    for (schedule, technique), values in means.items():
        summary[f"mean_{technique}_{schedule}"] = arithmetic_mean(values)
    return ExperimentReport(
        experiment="ablation-schedule",
        title="Sequential vs interleaved row schedule (traffic/compulsory)",
        headers=headers,
        rows=rows,
        summary=summary,
    )
