"""Corpus characterization report (paper Section III's corpus table).

Papers in this area tabulate their input matrices: size, density,
category, degree statistics, and — for this paper specifically — the
structural properties that predict reordering behaviour (insularity,
skew, community structure).  This driver produces that table for any
corpus profile, backed by the same cached metrics the experiments use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names, get_entry
from repro.metrics.degree_stats import degree_statistics
from repro.parallel.cells import Cell, metrics_cell


def plan(profile: str = "full") -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    return [metrics_cell(matrix) for matrix in corpus_names(profile)]


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    rows = []
    for matrix in runner.matrices():
        entry = get_entry(matrix)
        metrics = runner.matrix_metrics(matrix)
        stats = degree_statistics(runner.graph(matrix))
        rows.append(
            [
                matrix,
                entry.category,
                entry.publisher_order,
                metrics.n_nodes,
                metrics.nnz,
                metrics.avg_degree,
                stats.max_degree,
                stats.gini,
                metrics.skew,
                metrics.insularity,
                metrics.insular_node_fraction,
                metrics.n_communities,
            ]
        )
    categories = {row[1] for row in rows}
    return ExperimentReport(
        experiment="corpus-report",
        title=f"Corpus characterization ({profile} profile)",
        headers=[
            "matrix",
            "category",
            "order",
            "nodes",
            "nnz",
            "avg_deg",
            "max_deg",
            "gini",
            "skew",
            "insularity",
            "insular_frac",
            "communities",
        ],
        rows=rows,
        summary={
            "n_matrices": float(len(rows)),
            "n_categories": float(len(categories)),
            "min_nodes": float(min(row[3] for row in rows)),
            "max_nodes": float(max(row[3] for row in rows)),
            "min_avg_degree": float(min(row[5] for row in rows)),
            "max_avg_degree": float(max(row[5] for row in rows)),
        },
    )
