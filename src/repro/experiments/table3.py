"""Table III: average percentage of dead cache lines per ordering.

Dead lines are inserted but never re-referenced before eviction.  The
paper's values: RANDOM 63.31%, ORIGINAL 25.08%, DEGSORT 26.88%, DBG
25.23%, GORDER 17.73%, RABBIT 22.25%, RABBIT++ 16.37% — RABBIT++
wastes the least L2 capacity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, run_cell

TECHNIQUES = ("random", "original", "degsort", "dbg", "gorder", "rabbit", "rabbit++")

PAPER = {
    "random": 0.6331,
    "original": 0.2508,
    "degsort": 0.2688,
    "dbg": 0.2523,
    "gorder": 0.1773,
    "rabbit": 0.2225,
    "rabbit++": 0.1637,
}


def plan(profile: str = "full", techniques: Sequence[str] = TECHNIQUES) -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    return [
        run_cell(matrix, technique)
        for technique in techniques
        for matrix in corpus_names(profile)
    ]


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    techniques: Sequence[str] = TECHNIQUES,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    rows = []
    summary = {}
    reference = {}
    for technique in techniques:
        fractions = [
            runner.run(matrix, technique, kernel="spmv-csr").dead_line_fraction
            for matrix in runner.matrices()
        ]
        mean = arithmetic_mean(fractions)
        rows.append([technique, mean])
        summary[f"dead_fraction_{technique}"] = mean
        if technique in PAPER:
            reference[f"dead_fraction_{technique}"] = PAPER[technique]
    return ExperimentReport(
        experiment="table3",
        title="Average dead-line fraction in the L2 (SpMV)",
        headers=["technique", "mean_dead_fraction"],
        rows=rows,
        summary=summary,
        paper_reference=reference,
    )
