"""Figure 3: RABBIT run time (normalized to ideal) vs. matrix insularity.

The paper orders matrices by increasing insularity and shows RABBIT
approaching ideal as insularity grows: within 26% of ideal for
insularity >= 0.95, vs. 1.81x ideal below — with mawi as the
giant-community exception despite its 0.988 insularity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import corpus_names
from repro.parallel.cells import Cell, metrics_cell, run_cell

INSULARITY_SPLIT = 0.95

PAPER = {
    "mean_runtime_high_insularity": 1.26,
    "mean_runtime_low_insularity": 1.81,
}


def plan(profile: str = "full") -> List[Cell]:
    """Pipeline cells :func:`run` will request (see repro.parallel)."""
    cells: List[Cell] = []
    for matrix in corpus_names(profile):
        cells.append(metrics_cell(matrix))
        cells.append(run_cell(matrix, "rabbit"))
    return cells


def run(
    profile: str = "full",
    runner: Optional[ExperimentRunner] = None,
    split: float = INSULARITY_SPLIT,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    entries = []
    for matrix in runner.matrices():
        metrics = runner.matrix_metrics(matrix)
        record = runner.run(matrix, "rabbit", kernel="spmv-csr")
        entries.append((metrics.insularity, matrix, metrics, record))
    entries.sort(key=lambda item: item[0])

    rows = []
    high = []
    low = []
    for ins, matrix, metrics, record in entries:
        rows.append(
            [
                matrix,
                ins,
                record.normalized_runtime,
                metrics.normalized_avg_community_size,
                metrics.largest_community_fraction,
            ]
        )
        if ins >= split:
            high.append(record.normalized_runtime)
        else:
            low.append(record.normalized_runtime)

    summary = {}
    if high:
        summary["mean_runtime_high_insularity"] = arithmetic_mean(high)
    if low:
        summary["mean_runtime_low_insularity"] = arithmetic_mean(low)
    summary["n_high_insularity"] = float(len(high))
    summary["n_low_insularity"] = float(len(low))
    return ExperimentReport(
        experiment="fig3",
        title=f"RABBIT SpMV run time vs insularity (split at {split})",
        headers=[
            "matrix",
            "insularity",
            "runtime/ideal",
            "avg_comm_size/n",
            "largest_comm_frac",
        ],
        rows=rows,
        summary=summary,
        paper_reference=PAPER,
    )
