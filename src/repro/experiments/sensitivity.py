"""Extension: cache-capacity sensitivity of the reordering gap.

Not a paper artifact — an ablation DESIGN.md calls out.  Sweeps the
modeled L2 capacity and reports the RANDOM-vs-RABBIT++ traffic gap at
each size.  Expectations: with a tiny cache nothing fits and the
orderings converge (everything misses); with a huge cache everything
fits and they converge again (only compulsory misses); reordering pays
off precisely in the in-between regime the paper's platform sits in.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.experiments.report import ExperimentReport, arithmetic_mean
from repro.experiments.runner import ExperimentRunner
from repro.gpu.perf import model_run
from repro.sparse.permute import permute_symmetric
from repro.trace.kernel_traces import spmv_csr_trace

#: Capacity multipliers relative to the profile platform's L2.
CAPACITY_FACTORS = (0.125, 0.5, 1, 4, 16, 64)

TECHNIQUES = ("random", "rabbit++")


def run(
    profile: str = "bench",
    runner: Optional[ExperimentRunner] = None,
    factors: Sequence[float] = CAPACITY_FACTORS,
    matrices: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    runner = runner if runner is not None else ExperimentRunner(profile)
    base = runner.platform
    names = list(matrices) if matrices is not None else runner.matrices()[:4]

    # Traces depend only on the ordering, not the capacity: build once.
    traces = {}
    for matrix in names:
        graph = runner.graph(matrix)
        for technique in TECHNIQUES:
            timed = runner.permutation(matrix, technique)
            permuted = permute_symmetric(graph.adjacency, timed.permutation)
            traces[matrix, technique] = spmv_csr_trace(
                permuted, line_bytes=base.line_bytes
            )

    rows = []
    gaps = []
    for factor in factors:
        capacity = max(base.line_bytes * base.ways, int(base.l2_capacity_bytes * factor))
        platform = dataclasses.replace(
            base, name=f"{base.name}-x{factor}", l2_capacity_bytes=capacity
        )
        means = {}
        for technique in TECHNIQUES:
            values = [
                model_run(traces[matrix, technique], platform).normalized_traffic
                for matrix in names
            ]
            means[technique] = arithmetic_mean(values)
        gap = means["random"] / means["rabbit++"]
        gaps.append(gap)
        rows.append([factor, capacity // 1024, means["random"], means["rabbit++"], gap])

    return ExperimentReport(
        experiment="ablation-cache-sensitivity",
        title="RANDOM vs RABBIT++ traffic gap across L2 capacities",
        headers=["factor", "L2 KiB", "random", "rabbit++", "gap"],
        rows=rows,
        summary={
            "max_gap": max(gaps),
            "gap_at_smallest": gaps[0],
            "gap_at_largest": gaps[-1],
        },
    )
