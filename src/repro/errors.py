"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented invariant.

    Subclasses ``ValueError`` so call sites that predate the library's
    own hierarchy (``except ValueError``) keep working.
    """


class ShapeError(ValidationError):
    """Array shapes are inconsistent with each other or with metadata."""


class FormatError(ValidationError):
    """A sparse-matrix container violates its format invariants."""


class CorpusError(ReproError, KeyError):
    """A corpus entry was requested that does not exist."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class ParallelExecutionError(ExperimentError):
    """A worker process failed while precomputing a pipeline cell.

    Raised by :mod:`repro.parallel` with the failing cell named in the
    message; a crashed worker always fails the sweep loudly instead of
    silently dropping its cell.
    """


class TransientError(ReproError):
    """A failure that may succeed if the same work is simply retried.

    The resilience layer (:mod:`repro.resilience`) retries cells that
    fail with a :class:`TransientError` subclass (or a dead worker
    process) up to the configured :class:`~repro.resilience.RetryPolicy`
    budget; every other exception is treated as deterministic and fails
    fast without retrying.
    """


class CellTimeoutError(TransientError):
    """A pipeline cell exceeded its wall-clock timeout budget.

    Timeouts are classified transient: a cell can blow its budget
    because of machine load rather than its own work, so it is worth
    one more attempt before the sweep gives up on it.
    """


class CacheIntegrityError(TransientError):
    """A memo cache file failed its integrity check.

    Raised when a cached JSON payload is truncated, unparseable,
    carries an unknown schema version, or fails its checksum.  The
    damaged file is quarantined and the cell recomputed, which is why
    this error is transient: a retry recomputes from scratch.
    """


class OverloadedError(TransientError):
    """The serve tier shed this request: compute capacity is full.

    Raised by the admission controller when the in-flight compute
    semaphore and its bounded wait queue are both exhausted (or the
    queue wait timed out).  Transient by definition — the whole point
    of shedding is that the same request succeeds once load subsides —
    and carries ``retry_after`` (seconds) so the HTTP layer can answer
    ``429`` with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class BreakerOpenError(TransientError):
    """A circuit breaker is open: the protected fault domain is sick.

    Raised instead of attempting work a breaker has declared failing.
    ``retry_after`` is the time until the breaker's next half-open
    probe window, surfaced as the HTTP ``Retry-After`` on the ``503``
    this maps to (unless the request can degrade to a predictor-only
    answer instead).
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class SweepFailure(ParallelExecutionError):
    """A sweep ended with cells that failed permanently.

    Carries the structured :class:`~repro.resilience.FailureReport` as
    ``report`` so callers can inspect exactly which cells failed, with
    how many attempts, and whether the failures were transient.
    Subclasses :class:`ParallelExecutionError` so pre-resilience call
    sites catching that type keep working.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report
