"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented invariant.

    Subclasses ``ValueError`` so call sites that predate the library's
    own hierarchy (``except ValueError``) keep working.
    """


class ShapeError(ValidationError):
    """Array shapes are inconsistent with each other or with metadata."""


class FormatError(ValidationError):
    """A sparse-matrix container violates its format invariants."""


class CorpusError(ReproError, KeyError):
    """A corpus entry was requested that does not exist."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class ParallelExecutionError(ExperimentError):
    """A worker process failed while precomputing a pipeline cell.

    Raised by :mod:`repro.parallel` with the failing cell named in the
    message; a crashed worker always fails the sweep loudly instead of
    silently dropping its cell.
    """
