"""Command-line interface.

Examples::

    repro corpus list --profile bench
    repro metrics soc-forum
    repro evaluate soc-forum --technique rabbit++
    repro experiment fig2 --profile bench
    repro export soc-forum /tmp/soc-forum.mtx
    repro profile soc-forum --technique rabbit
    repro bench-reorder --smoke --json BENCH_reorder.json
    repro evaluate soc-forum --technique rabbit --reorder-impl reference
    repro cache-stats
    repro doctor
    repro run-all --jobs 4 --retries 2 --cell-timeout 120 --keep-going
    repro run-all --resume
    repro runs list
    repro trace <run_id> --chrome /tmp/trace.json
    repro bench --check --strict
    repro serve --profile bench --port 8787 --deadline 30
    repro serve-bench --requests 60 --concurrency 4 --json BENCH_serve.json
    repro version

Observability flags (global, before the subcommand)::

    repro --log-level info --log-file /tmp/run.jsonl experiment fig2

``--log-file`` writes one JSON event per span end / counter flush
(see :mod:`repro.obs` for the schema); ``--log-level`` turns on human
log lines on stderr; ``--quiet`` suppresses progress reporting.

Every ``experiment``/``run-all`` invocation additionally writes a run
ledger under ``runs/<run_id>/`` — a ``manifest.json`` with args,
config, span totals and histogram summaries, plus the JSONL event
files from the parent *and* every pool worker (disable with
``--no-ledger``; relocate with ``--runs-dir`` or ``$REPRO_RUNS_DIR``).
``repro runs list|show`` browses the ledger; ``repro trace <run_id>``
renders the stitched cross-process span tree and exports Chrome
trace-event JSON; ``repro bench --check`` gates fresh benchmark
payloads against committed baselines.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional

from repro import obs
from repro.experiments.report import render_table
from repro.experiments.run_all import ABLATIONS, DRIVERS, run_experiment, timing_summary
from repro.experiments.runner import ExperimentRunner, resolve_cache_dir
from repro.graphs.corpus import PROFILES, load_matrix, selection_report
from repro.graphs.io import write_matrix_market
from repro.obs import (
    Instrumentation,
    JsonlSink,
    NullSink,
    ProgressReporter,
    TeeSink,
    format_histograms,
    format_span_totals,
    get_obs,
)
from repro.obs.ledger import (
    RunLedger,
    effective_status,
    find_run_dir,
    list_runs,
    load_manifest,
    resolve_runs_dir,
)
from repro.reorder.benchreorder import BENCH_TECHNIQUES, SCALE_GRAPH
from repro.reorder.dispatch import IMPLS
from repro.reorder.registry import available_techniques

LOG_LEVELS = ("debug", "info", "warning", "error")

#: Memo-file kinds recognized by ``repro cache-stats`` (longest first,
#: so ``reorder-time-...json`` is not misread as kind ``reorder``).
_CACHE_KINDS = ("reorder-time", "metrics", "run")


#: Subcommands that write a run ledger (manifest + event files) under
#: ``runs/<run_id>/`` unless ``--no-ledger``; the value is the manifest
#: ``kind`` field.
_LEDGER_COMMANDS = {
    "experiment": "experiment",
    "run-all": "run-all",
    "bench": "bench-check",
    "serve": "serve",
    "serve-bench": "serve-bench",
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        instr, ledger = _make_instrumentation(args)
    except OSError as exc:
        print(f"repro: error: cannot open log file: {exc}", file=sys.stderr)
        return 2
    code: Optional[int] = None
    try:
        with obs.using(instr):
            try:
                code = args.handler(args)
            finally:
                instr.flush()
        return code
    finally:
        if ledger is not None:
            status = "ok" if code == 0 else ("error" if code is None else "failed")
            ledger.finalize(instr, exit_code=code, status=status)
            if not args.quiet:
                print(f"run ledger: {ledger.manifest_path}", file=sys.stderr)
        instr.close()


def _ledger_config(args: argparse.Namespace) -> dict:
    """The parsed CLI namespace as a JSON-friendly manifest section."""
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key != "handler" and not key.startswith("_")
    }


def _make_instrumentation(
    args: argparse.Namespace,
) -> "tuple[Instrumentation, Optional[RunLedger]]":
    """Build the per-invocation instrumentation (and run ledger) from
    the global flags.

    Ledger-bearing commands (see :data:`_LEDGER_COMMANDS`) get an
    *enabled* instrumentation whose events tee into the run directory
    — that directory doubles as the workers' trace dir, which is what
    stitches pool-worker spans into the parent trace.
    """
    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            stream=sys.stderr,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    sinks: List = []
    if args.log_file:
        sinks.append(JsonlSink(path=args.log_file))
    ledger: Optional[RunLedger] = None
    if args.command in _LEDGER_COMMANDS and not getattr(args, "no_ledger", False):
        ledger = RunLedger.create(
            resolve_runs_dir(getattr(args, "runs_dir", None)),
            kind=_LEDGER_COMMANDS[args.command],
            argv=list(sys.argv[1:]),
            config=_ledger_config(args),
        )
        sinks.append(JsonlSink(path=ledger.events_path))
    if not sinks:
        sink = NullSink()
    elif len(sinks) == 1:
        sink = sinks[0]
    else:
        sink = TeeSink(sinks)
    enabled = bool(args.log_file or args.log_level or ledger is not None)
    instr = Instrumentation(
        sink=sink,
        enabled=enabled,
        run_id=ledger.run_id if ledger is not None else None,
        trace_dir=ledger.dir if ledger is not None else None,
        # Ledger runs record per-phase peak RSS gauges into the
        # manifest, so `repro runs show` surfaces out-of-core wins.
        track_rss=ledger is not None,
    )
    args._ledger = ledger
    return instr, ledger


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Community-based matrix reordering reproduction (ISPASS 2023)",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help="enable observability and stderr logging at this level",
    )
    parser.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="append structured JSONL span/counter events to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress reporting"
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-ledger root (default: $REPRO_RUNS_DIR or ./runs)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not write a runs/<run_id>/ ledger for this invocation",
    )
    subparsers = parser.add_subparsers(dest="command")

    corpus = subparsers.add_parser("corpus", help="inspect the input corpus")
    corpus.add_argument("action", choices=["list"])
    corpus.add_argument("--profile", default="full", choices=PROFILES)
    corpus.set_defaults(handler=_cmd_corpus)

    export = subparsers.add_parser("export", help="write a corpus matrix as MatrixMarket")
    export.add_argument("matrix")
    export.add_argument("path")
    export.set_defaults(handler=_cmd_export)

    metrics = subparsers.add_parser("metrics", help="structure metrics of a matrix")
    metrics.add_argument("matrix")
    metrics.add_argument("--profile", default="full", choices=PROFILES)
    metrics.set_defaults(handler=_cmd_metrics)

    evaluate = subparsers.add_parser("evaluate", help="model one reordered kernel run")
    evaluate.add_argument("matrix")
    evaluate.add_argument("--technique", default="rabbit++", choices=available_techniques())
    evaluate.add_argument("--kernel", default="spmv-csr")
    evaluate.add_argument("--policy", default="lru", choices=["lru", "belady"])
    evaluate.add_argument("--profile", default="full", choices=PROFILES)
    _add_reorder_impl_flag(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    experiment = subparsers.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "name", choices=sorted(DRIVERS) + sorted(ABLATIONS) + ["all"]
    )
    experiment.add_argument("--profile", default="full", choices=PROFILES)
    experiment.add_argument(
        "--figure",
        action="store_true",
        help="also render an ASCII bar chart over the first numeric column",
    )
    _add_sweep_flags(experiment)
    _add_reorder_impl_flag(experiment)
    experiment.set_defaults(handler=_cmd_experiment)

    run_all = subparsers.add_parser(
        "run-all", help="regenerate every paper artifact (all drivers)"
    )
    run_all.add_argument("--profile", default="full", choices=PROFILES)
    run_all.add_argument(
        "--figure",
        action="store_true",
        help="also render an ASCII bar chart over the first numeric column",
    )
    _add_sweep_flags(run_all)
    _add_reorder_impl_flag(run_all)
    run_all.set_defaults(handler=_cmd_run_all)

    doctor = subparsers.add_parser(
        "doctor", help="verify memo-cache integrity (CI guard: exits 1 on damage)"
    )
    doctor.add_argument(
        "--cache-dir",
        default=None,
        help="memo directory (default: $REPRO_CACHE_DIR or ./.repro_cache); "
        "with --store, the store root to scan instead",
    )
    doctor.add_argument(
        "--store",
        action="store_true",
        help="scan the serve permutation store (default root: "
        "$REPRO_SERVE_STORE or <cache>/serve-store) instead of the memo cache",
    )
    doctor.add_argument(
        "--quarantine",
        action="store_true",
        help="move damaged/legacy files to <cache>/quarantine/ instead of "
        "only reporting them",
    )
    doctor.set_defaults(handler=_cmd_doctor)

    profile = subparsers.add_parser(
        "profile",
        help="per-stage time/traffic breakdown of one uncached pipeline run",
    )
    profile.add_argument("matrix")
    profile.add_argument("--technique", default="rabbit++", choices=available_techniques())
    profile.add_argument("--kernel", default="spmv-csr")
    profile.add_argument("--policy", default="lru", choices=["lru", "belady"])
    profile.add_argument("--profile", default="full", choices=PROFILES)
    _add_reorder_impl_flag(profile)
    profile.set_defaults(handler=_cmd_profile)

    cache_stats = subparsers.add_parser(
        "cache-stats", help="report .repro_cache/ memoization effectiveness"
    )
    cache_stats.add_argument(
        "--cache-dir",
        default=None,
        help="memo directory (default: $REPRO_CACHE_DIR or ./.repro_cache)",
    )
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    bench_sim = subparsers.add_parser(
        "bench-sim",
        help="benchmark the reference vs fast cache simulators",
    )
    bench_sim.add_argument(
        "--smoke", action="store_true", help="small workload for CI (seconds, not minutes)"
    )
    bench_sim.add_argument(
        "--policy",
        default="both",
        choices=["lru", "belady", "both"],
        help="replacement policies to benchmark",
    )
    bench_sim.add_argument(
        "--repeats", type=int, default=1, help="timing repetitions (best is kept)"
    )
    bench_sim.add_argument(
        "--kernel",
        default="spmv-csr",
        help="kernel traced over the seeded workload (default: spmv-csr)",
    )
    bench_sim.add_argument(
        "--json", default=None, metavar="PATH", help="write the BENCH_sim.json payload to PATH"
    )
    bench_sim.set_defaults(handler=_cmd_bench_sim)

    bench_reorder = subparsers.add_parser(
        "bench-reorder",
        help="benchmark the reference vs fast reordering engines",
    )
    bench_reorder.add_argument(
        "--smoke", action="store_true", help="small workload for CI (seconds, not minutes)"
    )
    bench_reorder.add_argument(
        "--technique",
        default="all",
        choices=["all", "detect"] + list(BENCH_TECHNIQUES),
        help="benchmark one technique, 'detect' for detection only, or 'all'",
    )
    bench_reorder.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best is kept)"
    )
    bench_reorder.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the BENCH_reorder.json payload to PATH",
    )
    bench_reorder.add_argument(
        "--scale",
        type=int,
        nargs="?",
        const=SCALE_GRAPH["scale"],
        default=None,
        metavar="N",
        help="scale-out mode: one end-to-end pass on an R-MAT of 2^N "
        f"nodes (default N={SCALE_GRAPH['scale']}) through the memmap "
        "matrix cache, reporting nodes/s, sharded-detection speedup, "
        "and peak RSS per phase",
    )
    bench_reorder.add_argument(
        "--edge-factor",
        type=int,
        default=SCALE_GRAPH["edge_factor"],
        help="scale-out mode: R-MAT edge factor "
        f"(default {SCALE_GRAPH['edge_factor']})",
    )
    bench_reorder.add_argument(
        "--seed",
        type=int,
        default=SCALE_GRAPH["seed"],
        help=f"scale-out mode: R-MAT seed (default {SCALE_GRAPH['seed']})",
    )
    bench_reorder.add_argument(
        "--shards",
        type=int,
        default=4,
        help="scale-out mode: shard count for sharded detection and the "
        "boba anchor scan (default 4)",
    )
    bench_reorder.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="scale-out mode: worker processes for the sharded passes "
        "(default 1; never changes any permutation)",
    )
    bench_reorder.add_argument(
        "--no-memmap",
        action="store_true",
        help="scale-out mode: build the matrix in RAM instead of "
        "loading it through the memmap matrix cache",
    )
    bench_reorder.set_defaults(handler=_cmd_bench_reorder)

    trace = subparsers.add_parser(
        "trace",
        help="render one run's stitched cross-process span tree",
    )
    trace.add_argument("run_id", help="run id (or unique prefix) from runs/")
    trace.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="also export Chrome trace-event JSON (load in Perfetto or "
        "chrome://tracing)",
    )
    trace.set_defaults(handler=_cmd_trace)

    runs = subparsers.add_parser(
        "runs", help="browse the run ledger (runs/<run_id>/manifest.json)"
    )
    runs.add_argument("action", choices=["list", "show"])
    runs.add_argument(
        "run_id", nargs="?", default=None, help="run id for 'show' (or unique prefix)"
    )
    runs.set_defaults(handler=_cmd_runs)

    bench = subparsers.add_parser(
        "bench",
        help="perf-regression gate: compare fresh BENCH payloads to baselines",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare fresh payloads against the committed baselines; "
        "exit 1 on any regression",
    )
    bench.add_argument(
        "--sim",
        default="BENCH_sim.json",
        metavar="PATH",
        help="fresh bench-sim payload (default: BENCH_sim.json)",
    )
    bench.add_argument(
        "--reorder",
        default="BENCH_reorder.json",
        metavar="PATH",
        help="fresh bench-reorder payload (default: BENCH_reorder.json)",
    )
    bench.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        metavar="DIR",
        help="committed baseline payloads (default: benchmarks/baselines)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional speedup drop before failing "
        "(default: 0.4, i.e. fresh >= 60%% of baseline passes)",
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help="a missing fresh payload fails the gate instead of skipping "
        "(CI uses this so a benchmark that produced no output cannot pass)",
    )
    bench.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh payloads into the baseline dir (re-baseline)",
    )
    bench.set_defaults(handler=_cmd_bench)

    serve = subparsers.add_parser(
        "serve",
        help="run the reordering-as-a-service HTTP endpoint",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port to bind (0 picks a free port; default: 8787)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port number to PATH once listening "
        "(lets callers use --port 0 without a port race)",
    )
    serve.add_argument("--profile", default="bench", choices=PROFILES)
    serve.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="permutation store root (default: $REPRO_SERVE_STORE or "
        "<cache>/serve-store)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request wall-clock budget (requests may "
        "override with deadline_seconds; over budget returns 504)",
    )
    serve.add_argument(
        "--iterations",
        type=int,
        default=100,
        metavar="N",
        help="default amortization horizon for technique=auto "
        "(default: 100 kernel iterations)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="admission control: max concurrent reorder computations "
        "(store hits and /v1/recommend are never gated; default: 4)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        metavar="N",
        help="admission control: max requests waiting for a compute slot; "
        "beyond this, requests are shed with 429 + Retry-After (default: 8)",
    )
    serve.add_argument(
        "--queue-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="max time a queued request waits for a compute slot before "
        "being shed with 429 (default: 2.0)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM: max time to finish in-flight requests before "
        "shutting down anyway (default: 10)",
    )
    serve.add_argument(
        "--breaker-min-failures",
        type=int,
        default=4,
        metavar="N",
        help="compute/store circuit breakers: failures in the rolling "
        "window before a breaker may open (default: 4)",
    )
    serve.add_argument(
        "--breaker-recovery",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="circuit breakers: open duration before half-open probes "
        "test recovery (default: 2.0)",
    )
    _add_reorder_impl_flag(serve)
    serve.set_defaults(handler=_cmd_serve)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="load-test a serve endpoint with a zipf-skewed trace",
    )
    serve_bench.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="serve endpoint to target (default: spawn a private "
        "`repro serve --port 0` for the duration of the bench)",
    )
    serve_bench.add_argument("--profile", default="test", choices=PROFILES)
    serve_bench.add_argument(
        "--requests", type=int, default=60, metavar="N", help="trace length"
    )
    serve_bench.add_argument(
        "--concurrency", type=int, default=4, metavar="N", help="client threads"
    )
    serve_bench.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="zipf exponent for matrix popularity (0 = uniform)",
    )
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument(
        "--technique", default="rabbit++", choices=available_techniques() + ["auto"]
    )
    serve_bench.add_argument("--kernel", default="spmv-csr")
    serve_bench.add_argument("--policy", default="lru", choices=["lru", "belady"])
    serve_bench.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="store root for a spawned server (fresh temp dir by default "
        "keeps the first touches honest misses)",
    )
    serve_bench.add_argument(
        "--json",
        default="BENCH_serve.json",
        metavar="PATH",
        help="write the bench payload to PATH (default: BENCH_serve.json)",
    )
    serve_bench.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit 1 unless the store hit rate reaches FRACTION (CI gate)",
    )
    serve_bench.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="per-request client timeout",
    )
    serve_bench.add_argument(
        "--overload",
        action="store_true",
        help="overload mode: spawn a small-admission server, drive it at "
        "--offered-factor x compute capacity, and report goodput / shed "
        "rate / accepted p99 (spawns its own servers; --url is rejected)",
    )
    serve_bench.add_argument(
        "--offered-factor",
        type=float,
        default=6.0,
        metavar="X",
        help="overload: offered load as a multiple of compute capacity "
        "(client threads = X * --max-inflight; default: 6)",
    )
    serve_bench.add_argument(
        "--max-inflight",
        type=int,
        default=1,
        metavar="N",
        help="overload: compute slots on the spawned server; keep at or "
        "below the physical core count, extra slots just time-slice and "
        "inflate accepted latency (default: 1)",
    )
    serve_bench.add_argument(
        "--max-queue",
        type=int,
        default=2,
        metavar="N",
        help="overload: admission queue depth on the spawned server "
        "(default: 2)",
    )
    serve_bench.add_argument(
        "--min-goodput",
        type=float,
        default=None,
        metavar="RPS",
        help="overload gate: exit 1 unless accepted requests/s reaches "
        "RPS (CI uses this)",
    )
    serve_bench.set_defaults(handler=_cmd_serve_bench)

    predict_validate = subparsers.add_parser(
        "predict-validate",
        help="fit the effectiveness predictor and gate on rank correlation",
    )
    predict_validate.add_argument("--profile", default="test", choices=PROFILES)
    predict_validate.add_argument("--kernel", default="spmv-csr")
    predict_validate.add_argument(
        "--min-spearman",
        type=float,
        default=None,
        metavar="RHO",
        help="exit 1 unless the calibration Spearman reaches RHO "
        "(default: the package floor, 0.8)",
    )
    predict_validate.add_argument(
        "--cache-dir",
        default=None,
        help="memo directory (default: $REPRO_CACHE_DIR or ./.repro_cache)",
    )
    predict_validate.add_argument(
        "--json", default=None, metavar="PATH", help="write the validation payload to PATH"
    )
    predict_validate.set_defaults(handler=_cmd_predict_validate)

    version = subparsers.add_parser("version", help="print the package version")
    version.set_defaults(handler=_cmd_version)

    techniques = subparsers.add_parser("techniques", help="list reordering techniques")
    techniques.set_defaults(handler=_cmd_techniques)
    return parser


def _add_reorder_impl_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reorder-impl",
        default=None,
        choices=IMPLS,
        help="reordering engine: 'fast' (vectorized), 'reference', or "
        "'auto' by graph size (default; also via $REPRO_REORDER_IMPL); "
        "permutations are bit-identical across engines",
    )


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    """Parallelism + resilience flags shared by experiment/run-all."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="precompute pipeline cells in N worker processes sharing "
        "the memo directory (default: 1, fully sequential)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transiently-failed cells up to N times with "
        "exponential backoff (default: 0, fail on first error)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; a cell over budget raises "
        "CellTimeoutError and is retried like any transient failure",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="record failed cells/drivers in a failure report and finish "
        "the sweep with partial results instead of aborting "
        "(exit code 1 if anything failed permanently)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already checkpointed in the sweep manifest "
        "(written next to the memo cache by every sweep)",
    )


def _cmd_corpus(args: argparse.Namespace) -> int:
    records = selection_report(args.profile)
    rows = [
        [r.name, r.category, r.n_nodes, r.nnz, f"{r.avg_degree:.2f}",
         "yes" if r.selected else f"no ({r.reason})"]
        for r in records
    ]
    print(render_table(["matrix", "category", "nodes", "nnz", "avg_deg", "selected"], rows))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    matrix = load_matrix(args.matrix)
    write_matrix_market(matrix, args.path, comment=f"repro corpus entry {args.matrix}")
    print(f"wrote {args.matrix} ({matrix.shape}, nnz={matrix.nnz}) to {args.path}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(args.profile)
    metrics = runner.matrix_metrics(args.matrix)
    for key, value in sorted(metrics.to_json().items()):
        print(f"{key:32s} {value}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(args.profile, reorder_impl=args.reorder_impl)
    record = runner.run(
        args.matrix, args.technique, kernel=args.kernel, policy=args.policy
    )
    for key, value in sorted(record.to_json().items()):
        print(f"{key:24s} {value}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    # The whole sweep runs under one root span: worker processes root
    # their spans beneath it (TraceContext captures its id at pool
    # construction), so `repro trace <run_id>` shows every cell span
    # parented under this experiment span.
    with get_obs().span("experiment", experiment=args.name, profile=args.profile):
        return _run_experiment_sweep(args)


def _run_experiment_sweep(args: argparse.Namespace) -> int:
    from repro.resilience import (
        CellFailure,
        FailureReport,
        RetryPolicy,
        SweepManifest,
        is_transient,
    )

    names = sorted(DRIVERS) if args.name == "all" else [args.name]
    runner = ExperimentRunner(
        args.profile, reorder_impl=getattr(args, "reorder_impl", None)
    )
    jobs = getattr(args, "jobs", 1)
    retry = RetryPolicy.from_retries(getattr(args, "retries", 0))
    cell_timeout = getattr(args, "cell_timeout", None)
    keep_going = getattr(args, "keep_going", False)
    manifest = SweepManifest.for_sweep(
        runner.cache_dir, args.profile, resume=getattr(args, "resume", False)
    )
    ledger = getattr(args, "_ledger", None)
    if ledger is not None:
        manifest.add_run_id(ledger.run_id)
        ledger.record(
            "corpus_profile",
            {"profile": args.profile, "experiments": names},
        )
    pending_cell_failures: dict = {}
    if jobs > 1:
        from repro.parallel import plan_cells, precompute

        drivers = {n: DRIVERS.get(n) or ABLATIONS[n] for n in names}
        n_cells = len(plan_cells(drivers, args.profile))
        cell_progress = ProgressReporter(
            n_cells, label="precompute", enabled=not args.quiet and n_cells > 0
        )
        stats = precompute(
            drivers,
            runner,
            jobs,
            progress=cell_progress,
            retry=retry,
            cell_timeout=cell_timeout,
            keep_going=keep_going,
            manifest=manifest,
        )
        cell_progress.finish()
        # Precompute failures are provisional: the in-process driver
        # replay recomputes any missing cell, so a failure only sticks
        # if the driver that needs it fails too.
        pending_cell_failures = {f.label: f for f in stats.failures}
    progress = ProgressReporter(
        len(names), label="experiments", enabled=not args.quiet and len(names) > 1
    )
    failures = FailureReport()
    for name in names:
        try:
            report = run_experiment(name, profile=args.profile, runner=runner)
        except Exception as exc:
            if not keep_going:
                raise
            import traceback

            failures.add(
                CellFailure(
                    label=f"driver:{name}",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=1,
                    transient=is_transient(exc),
                    traceback=traceback.format_exc(),
                )
            )
            progress.update(name)
            continue
        manifest.mark_driver(name)
        if pending_cell_failures:
            from repro.parallel import driver_plan

            for cell in driver_plan(DRIVERS.get(name) or ABLATIONS[name], args.profile):
                pending_cell_failures.pop(cell.label(), None)
        progress.update(name)
        print(report.to_text())
        if getattr(args, "figure", False):
            column = _first_numeric_column(report.rows)
            if column is not None:
                print()
                print(report.to_figure(value_column=column))
        print()
    progress.finish()
    # Keyed on the explicit log flags, not obs.enabled: the run ledger
    # enables instrumentation for every sweep, but the stdout timing
    # dump should stay opt-in.
    if (args.log_level or args.log_file) and not args.quiet:
        print("== where the time went ==")
        print(timing_summary())
    if keep_going:
        for failure in pending_cell_failures.values():
            failures.add(failure)
        manifest.record_failures(failures)
        print(failures.summary_text(), file=sys.stderr if failures else sys.stdout)
        if ledger is not None and failures:
            ledger.record("failures", failures.to_json())
        if failures:
            return 1
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    """``repro run-all`` — every paper-artifact driver, optionally parallel."""
    args.name = "all"
    return _cmd_experiment(args)


def _first_numeric_column(rows) -> Optional[int]:
    if not rows:
        return None
    for column, value in enumerate(rows[0]):
        if column > 0 and isinstance(value, float):
            return column
    return None


def _cmd_profile(args: argparse.Namespace) -> int:
    """One uncached pipeline run under a dedicated instrumentation."""
    instr = Instrumentation(enabled=True, track_rss=True)
    with obs.using(instr):
        runner = ExperimentRunner(
            args.profile, use_cache=False, reorder_impl=args.reorder_impl
        )
        with instr.span("profile") as wall:
            record = runner.run(
                args.matrix, args.technique, kernel=args.kernel, policy=args.policy
            )
    totals = instr.span_totals()
    totals.pop("profile", None)
    print(
        f"== profile {args.matrix} "
        f"(technique={args.technique}, kernel={args.kernel}, policy={args.policy}) =="
    )
    print(format_span_totals(totals, total_seconds=wall.seconds))
    print()
    histograms = instr.counters.histograms()
    histograms.pop("profile", None)
    if histograms:
        print("latency percentiles (per phase):")
        print(format_histograms(histograms))
        print()
    _print_reorder_breakdown(runner, args, totals)
    print(f"wall seconds        {wall.seconds:.4f}")
    print("traffic breakdown:")
    for key in (
        "traffic_bytes",
        "compulsory_bytes",
        "normalized_traffic",
        "normalized_runtime",
        "hit_rate",
        "dead_line_fraction",
        "accesses",
        "misses",
        "reorder_seconds",
    ):
        print(f"  {key:24s} {getattr(record, key)}")
    return 0


def _print_reorder_breakdown(runner, args: argparse.Namespace, totals) -> None:
    """Reorder-phase split of one profiled run, from the span totals.

    The ``reorder`` span wraps the whole permutation computation; the
    nested ``reorder-detect`` span covers community detection for the
    detector-backed techniques (rabbit/rabbit++/louvain), so the
    difference is ordering/assembly work (dendrogram DFS, grouping,
    permutation inversion).
    """
    from repro.reorder.dispatch import resolve_for_graph, resolve_impl

    reorder = totals.get("reorder")
    if reorder is None:
        return
    graph = runner.graph(args.matrix)
    if args.technique == "louvain" and resolve_impl(args.reorder_impl) == "auto":
        # Louvain resolves "auto" to the reference engine (see
        # repro.community.louvain.louvain).
        resolved = "reference"
    else:
        resolved = resolve_for_graph(
            args.reorder_impl, graph.n_nodes, graph.n_edges
        )
    detect = totals.get("reorder-detect")
    print(f"reorder phase breakdown (impl={resolved}):")
    print(f"  {'total reorder':24s} {reorder.seconds:.4f}s")
    if detect is not None:
        print(f"  {'community detection':24s} {detect.seconds:.4f}s")
        print(
            f"  {'ordering/assembly':24s} "
            f"{max(reorder.seconds - detect.seconds, 0.0):.4f}s"
        )
    permute = totals.get("permute")
    if permute is not None:
        print(f"  {'permutation apply':24s} {permute.seconds:.4f}s")
    print()


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    cache_dir = resolve_cache_dir(args.cache_dir)
    entries = {kind: [0, 0] for kind in _CACHE_KINDS}  # kind -> [count, bytes]
    other = [0, 0]
    if os.path.isdir(cache_dir):
        for name in os.listdir(cache_dir):
            path = os.path.join(cache_dir, name)
            if not (name.endswith(".json") and os.path.isfile(path)):
                continue
            size = os.path.getsize(path)
            for kind in _CACHE_KINDS:
                if name.startswith(f"{kind}-"):
                    entries[kind][0] += 1
                    entries[kind][1] += size
                    break
            else:
                other[0] += 1
                other[1] += size
    rows = [[kind, count, size] for kind, (count, size) in entries.items()]
    if other[0]:
        rows.append(["other", other[0], other[1]])
    total_count = sum(row[1] for row in rows)
    total_bytes = sum(row[2] for row in rows)
    rows.append(["total", total_count, total_bytes])
    print(f"cache dir: {cache_dir}" + ("" if os.path.isdir(cache_dir) else " (missing)"))
    print(render_table(["kind", "entries", "bytes"], rows))
    _print_quarantine_stats(cache_dir)

    counters = get_obs().counters.snapshot()["counters"]
    hits = sum(v for k, v in counters.items() if k.startswith("memo.") and k.endswith(".hit"))
    misses = sum(v for k, v in counters.items() if k.startswith("memo.") and k.endswith(".miss"))
    print()
    if hits + misses:
        print(
            f"this process: {int(hits)} memo hits, {int(misses)} misses "
            f"(hit ratio {hits / (hits + misses):.1%})"
        )
    else:
        print("this process: no memo lookups recorded (enable with --log-level/--log-file)")
    return 0


def _print_quarantine_stats(cache_dir: str) -> None:
    """Quarantine subdirectory contents: count, bytes, newest entry.

    Quarantined files are damaged/legacy memo files ``repro doctor
    --quarantine`` (or a failed read) moved out of the cache's read
    path; surfacing them here keeps silent data loss visible.
    """
    from repro.resilience import quarantine_path

    qdir = quarantine_path(cache_dir)
    entries = []
    if os.path.isdir(qdir):
        for name in sorted(os.listdir(qdir)):
            path = os.path.join(qdir, name)
            if os.path.isfile(path):
                entries.append((name, os.path.getsize(path), os.path.getmtime(path)))
    print()
    if not entries:
        print("quarantine: empty")
        return
    total_bytes = sum(size for _, size, _ in entries)
    newest = max(entries, key=lambda e: e[2])
    import datetime

    stamp = datetime.datetime.fromtimestamp(newest[2]).strftime("%Y-%m-%d %H:%M:%S")
    print(
        f"quarantine: {len(entries)} file(s), {total_bytes} bytes "
        f"(newest: {newest[0]}, {stamp})"
    )
    print("  inspect with: repro doctor; clear by deleting the quarantine dir")


def _cmd_doctor(args: argparse.Namespace) -> int:
    """``repro doctor`` — memo-cache integrity scan (CI guard).

    Exits 0 when every in-cache memo file verifies; 1 when any file is
    damaged (bad JSON, checksum or schema mismatch) or predates cache
    versioning.  Already-quarantined files are reported but don't fail
    the scan — they are out of the cache's read path.

    With ``--store`` the scan targets the serve permutation store
    instead (same integrity report, nested layout); the server runs the
    same scrub with quarantine at startup.
    """
    from repro.resilience import quarantine_file, scan_cache

    if args.store:
        return _doctor_store(args)
    cache_dir = resolve_cache_dir(args.cache_dir)
    scan = scan_cache(cache_dir)
    print(f"cache dir: {cache_dir}" + ("" if os.path.isdir(cache_dir) else " (missing)"))
    rows = [
        ["ok", len(scan.ok)],
        ["legacy (unversioned)", len(scan.legacy)],
        ["damaged", len(scan.damaged)],
        ["quarantined", len(scan.quarantined)],
    ]
    print(render_table(["status", "files"], rows))
    for name, reason in scan.damaged:
        print(f"DAMAGED {name}: {reason}")
    for name in scan.legacy:
        print(f"LEGACY  {name}: missing cache envelope (will be quarantined on read)")
    for name in scan.quarantined:
        print(f"QUARANTINED {name}")
    if args.quarantine:
        for name, _reason in scan.damaged:
            quarantine_file(os.path.join(cache_dir, name), cache_dir=cache_dir)
        for name in scan.legacy:
            quarantine_file(
                os.path.join(cache_dir, name), cache_dir=cache_dir, reason="legacy"
            )
        moved = len(scan.damaged) + len(scan.legacy)
        if moved:
            print(f"quarantined {moved} file(s) to {os.path.join(cache_dir, 'quarantine')}")
    if scan.healthy:
        print("cache integrity: OK")
        return 0
    print(
        f"cache integrity: {len(scan.damaged)} damaged, "
        f"{len(scan.legacy)} legacy file(s)",
        file=sys.stderr,
    )
    return 1


def _doctor_store(args: argparse.Namespace) -> int:
    """``repro doctor --store`` — serve permutation-store integrity scan."""
    from repro.serve.store import PermutationStore

    store = PermutationStore(args.cache_dir)
    scan = store.scan(quarantine=args.quarantine)
    print(
        f"serve store: {store.root}"
        + ("" if os.path.isdir(store.root) else " (missing)")
    )
    rows = [
        ["ok", len(scan.ok)],
        ["legacy (unversioned)", len(scan.legacy)],
        ["damaged", len(scan.damaged)],
        ["quarantined", len(scan.quarantined)],
    ]
    print(render_table(["status", "entries"], rows))
    for name, reason in scan.damaged:
        print(f"DAMAGED {name}: {reason}")
    for name in scan.legacy:
        print(f"LEGACY  {name}: missing cache envelope (will be quarantined on read)")
    for name in scan.quarantined:
        print(f"QUARANTINED {name}")
    if args.quarantine:
        moved = len(scan.damaged) + len(scan.legacy)
        if moved:
            print(
                f"quarantined {moved} entries to "
                f"{os.path.join(store.root, 'quarantine')}"
            )
    if scan.healthy:
        print("store integrity: OK")
        return 0
    print(
        f"store integrity: {len(scan.damaged)} damaged, "
        f"{len(scan.legacy)} legacy entries",
        file=sys.stderr,
    )
    return 1


def _cmd_bench_sim(args: argparse.Namespace) -> int:
    from repro.cache.benchsim import build_bench_workload, run_bench

    policies = ("lru", "belady") if args.policy == "both" else (args.policy,)
    trace, config = build_bench_workload(smoke=args.smoke, kernel=args.kernel)
    print(
        f"workload: {trace.kernel}, {trace.lines.size} accesses, "
        f"{config.n_sets} sets x {config.ways} ways"
    )
    payload = run_bench(trace, config, policies=policies, repeats=args.repeats)
    rows = [
        [r["policy"], r["impl"], f"{r['seconds']:.3f}", f"{r['accesses_per_s']:,.0f}"]
        for r in payload["results"]
    ]
    print(render_table(["policy", "impl", "seconds", "accesses/s"], rows))
    for policy, speedup in payload["speedups"].items():
        print(f"{policy}: fast is {speedup:.1f}x reference (identical CacheStats)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_bench_reorder(args: argparse.Namespace) -> int:
    from repro.reorder.benchreorder import (
        DETECT_ROW,
        build_bench_graphs,
        run_bench,
    )

    if args.scale is not None:
        return _bench_reorder_scale(args)
    detect_graph, technique_graph = build_bench_graphs(smoke=args.smoke)
    if args.technique == "all":
        techniques = BENCH_TECHNIQUES
    elif args.technique == "detect":
        techniques = ()
    else:
        techniques = (args.technique,)
    print(
        f"detection workload: {detect_graph.n_nodes} nodes, "
        f"{detect_graph.to_undirected().adjacency.nnz} symmetric nnz"
    )
    print(
        f"technique workload: {technique_graph.n_nodes} nodes, "
        f"{technique_graph.adjacency.nnz} nnz"
    )
    payload = run_bench(
        detect_graph, technique_graph, techniques=techniques, repeats=args.repeats
    )
    rows = [
        [r["name"], r["impl"], f"{r['seconds']:.3f}", f"{r['nodes_per_s']:,.0f}"]
        for r in payload["results"]
    ]
    print(render_table(["workload", "impl", "seconds", "nodes/s"], rows))
    for name, speedup in payload["speedups"].items():
        suffix = " (detection throughput)" if name == DETECT_ROW else ""
        print(f"{name}: fast is {speedup:.1f}x reference{suffix}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _bench_reorder_scale(args: argparse.Namespace) -> int:
    """``repro bench-reorder --scale N`` — the scale-out mode."""
    from repro.reorder.benchreorder import run_scale_bench

    payload = run_scale_bench(
        scale=args.scale,
        edge_factor=args.edge_factor,
        seed=args.seed,
        n_shards=args.shards,
        jobs=args.jobs,
        use_memmap=not args.no_memmap,
    )
    workload = payload["workload"]
    print(
        f"scale workload: 2^{workload['scale']} = {workload['n_nodes']} nodes, "
        f"{workload['nnz']} nnz ({workload['undirected_nnz']} symmetric), "
        f"{'memmap' if workload['memmap'] else 'in-RAM'}, "
        f"setup {workload['setup_seconds']:.1f}s"
    )
    detection = payload["detection"]
    rows = [
        [
            mode,
            f"{stats['seconds']:.3f}",
            f"{stats['nodes_per_s']:,.0f}",
            f"{stats['modularity']:.4f}",
            f"{stats['n_communities']}",
        ]
        for mode, stats in (("single", detection["single"]), ("sharded", detection["sharded"]))
    ]
    print(render_table(["detection", "seconds", "nodes/s", "modularity", "communities"], rows))
    print(
        f"sharded detection ({detection['sharded']['n_shards']} shards, "
        f"{detection['sharded']['jobs']} jobs) is "
        f"{detection['sharded_speedup']:.2f}x single-shard"
    )
    rows = [
        [r["name"], f"{r['seconds']:.3f}", f"{r['nodes_per_s']:,.0f}",
         r["permutation_sha256"][:12]]
        for r in payload["techniques"]
    ]
    print(render_table(["technique", "seconds", "nodes/s", "perm sha256"], rows))
    rss = payload["rss_peak_kb"]
    if rss:
        print(
            "peak RSS (KB): "
            + ", ".join(f"{phase}={value}" for phase, value in rss.items())
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace <run_id>`` — stitched cross-process span tree."""
    from repro.obs.tracefile import (
        build_span_tree,
        read_events,
        render_span_tree,
        to_chrome_trace,
    )

    runs_dir = resolve_runs_dir(args.runs_dir)
    run_dir = find_run_dir(runs_dir, args.run_id)
    if run_dir is None:
        print(
            f"repro: error: no run matching {args.run_id!r} under {runs_dir}",
            file=sys.stderr,
        )
        return 2
    result = read_events(run_dir)
    spans = result.spans()
    pids = sorted({e.get("pid") for e in spans if e.get("pid") is not None})
    print(
        f"run {os.path.basename(run_dir)}: {len(spans)} spans from "
        f"{len(result.files)} event file(s), {len(pids)} process(es)"
    )
    if result.total_bad_lines:
        print(
            f"warning: skipped {result.total_bad_lines} malformed line(s):",
            file=sys.stderr,
        )
        for path, bad in sorted(result.bad_lines.items()):
            if bad:
                print(f"  {os.path.basename(path)}: {bad}", file=sys.stderr)
    roots, orphans = build_span_tree(spans)
    if orphans:
        print(
            f"note: {orphans} span(s) reference a parent span that never "
            "flushed (shown as roots)"
        )
    print()
    print(render_span_tree(roots))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(to_chrome_trace(spans), handle, indent=1, sort_keys=True)
        print(f"\nwrote Chrome trace-event JSON to {args.chrome} "
              "(open in Perfetto or chrome://tracing)")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """``repro runs list|show`` — browse the run ledger."""
    runs_dir = resolve_runs_dir(args.runs_dir)
    if args.action == "list":
        manifests = list_runs(runs_dir)
        if not manifests:
            print(f"no runs under {runs_dir}")
            return 0
        rows = []
        for manifest in manifests:
            duration = manifest.get("duration_seconds")
            rows.append(
                [
                    manifest.get("run_id", "?"),
                    manifest.get("kind", "?"),
                    # Stale-aware: a crashed run's stub says "running"
                    # forever; render it as "stale" once its pid is gone.
                    effective_status(manifest),
                    manifest.get("started_at_iso", "-"),
                    "-" if duration is None else f"{float(duration):.1f}s",
                    "-"
                    if manifest.get("exit_code") is None
                    else str(manifest.get("exit_code")),
                ]
            )
        print(f"runs dir: {runs_dir}")
        print(render_table(["run_id", "kind", "status", "started", "duration", "exit"], rows))
        return 0
    if not args.run_id:
        print("repro: error: 'runs show' needs a run id", file=sys.stderr)
        return 2
    manifest = load_manifest(runs_dir, args.run_id)
    if manifest is None:
        print(
            f"repro: error: no run matching {args.run_id!r} under {runs_dir}",
            file=sys.stderr,
        )
        return 2
    manifest = dict(manifest)
    manifest["effective_status"] = effective_status(manifest)
    print(json.dumps(manifest, indent=1, sort_keys=True, default=str))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench --check`` — gate fresh BENCH payloads vs baselines.

    Exits 0 when every gated speedup is within tolerance of its
    baseline, 1 on any regression (or correctness-flag failure), 2 on
    usage errors.  ``--update`` instead copies the fresh payloads over
    the baselines.
    """
    import shutil

    from repro.obs.benchgate import (
        DEFAULT_TOLERANCE,
        check_files,
        format_gate_report,
    )

    pairs = [
        ("bench-sim", os.path.join(args.baseline_dir, "BENCH_sim.json"), args.sim),
        (
            "bench-reorder",
            os.path.join(args.baseline_dir, "BENCH_reorder.json"),
            args.reorder,
        ),
    ]
    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        updated = 0
        for label, baseline_path, fresh_path in pairs:
            if not os.path.exists(fresh_path):
                print(f"[SKIP] {label}: no fresh payload at {fresh_path}")
                continue
            shutil.copyfile(fresh_path, baseline_path)
            print(f"[BASELINE] {label}: {fresh_path} -> {baseline_path}")
            updated += 1
        if not updated:
            print(
                "repro: error: --update found no fresh payloads "
                "(run repro bench-sim/bench-reorder --smoke --json first)",
                file=sys.stderr,
            )
            return 2
        return 0
    if not args.check:
        print("repro: error: bench needs --check or --update", file=sys.stderr)
        return 2
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    results, skipped = check_files(pairs, tolerance=tolerance, strict=args.strict)
    print(format_gate_report(results, skipped))
    ledger = getattr(args, "_ledger", None)
    if ledger is not None:
        ledger.record(
            "bench",
            {
                "tolerance": tolerance,
                "strict": bool(args.strict),
                "results": [r.to_json() for r in results],
                "skipped": list(skipped),
            },
        )
    passed = all(r.passed for r in results)
    if not results and not skipped:
        print("repro: error: nothing to gate", file=sys.stderr)
        return 2
    if passed:
        print("bench gate: PASS")
        return 0
    print("bench gate: FAIL (perf regression or correctness mismatch)", file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — the reordering-as-a-service HTTP endpoint."""
    import signal
    import threading

    from repro.serve.httpd import make_server
    from repro.serve.service import ReorderService, ServeConfig

    config = ServeConfig(
        profile=args.profile,
        store_dir=args.store_dir,
        reorder_impl=args.reorder_impl,
        default_deadline_seconds=args.deadline,
        default_iterations=args.iterations,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        breaker_min_failures=args.breaker_min_failures,
        breaker_recovery_seconds=args.breaker_recovery,
    )
    service = ReorderService(config)
    # Startup scrub: quarantine any crash-corrupted store entry before
    # the first request, so damage can never serve as a bad hit.
    scrub = service.store.scan(quarantine=True)
    if not scrub.healthy and not args.quiet:
        print(
            f"repro serve: startup scrub quarantined "
            f"{len(scrub.damaged) + len(scrub.legacy)} store entries",
            file=sys.stderr,
        )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    if args.port_file:
        # Write-then-rename so pollers never read a partial number.
        tmp = f"{args.port_file}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(str(port))
        os.replace(tmp, args.port_file)
    ledger = getattr(args, "_ledger", None)
    if ledger is not None:
        ledger.record(
            "serve",
            {
                "host": host,
                "port": port,
                "profile": args.profile,
                "store": service.store.root,
            },
        )
    if not args.quiet:
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"(profile={args.profile}, store={service.store.root})",
            file=sys.stderr,
        )

    drain_result: dict = {"clean": None}

    def _graceful(signum, frame):
        # Graceful drain. This handler runs on the main thread, where
        # serve_forever is paused — calling server.shutdown() here
        # would deadlock (it waits for the serve loop to acknowledge).
        # So: flag the drain (readiness flips to 503, new requests are
        # refused) and let a background thread wait out the in-flight
        # requests before shutting the listener down.
        if server.draining:
            return
        server.draining = True

        def _drain() -> None:
            drain_result["clean"] = server.drain(args.drain_timeout)

        threading.Thread(target=_drain, name="serve-drain", daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _graceful)
    try:
        with get_obs().span("serve-session", profile=args.profile):
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
    if ledger is not None:
        ledger.record("serve_stats", service.stats())
        if drain_result["clean"] is not None:
            ledger.record(
                "serve_drain",
                {
                    "clean": drain_result["clean"],
                    "deadline_seconds": args.drain_timeout,
                },
            )
        errors = service.recent_errors()
        if errors:
            # Every 500's error_id (echoed to the client) lands here,
            # so operators can join a client report to the traceback.
            ledger.record("serve_errors", errors)
    if not args.quiet and drain_result["clean"] is not None:
        state = "clean" if drain_result["clean"] else "timed out"
        print(f"repro serve: drain {state}; exiting", file=sys.stderr)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """``repro serve-bench`` — replay a zipf trace, write BENCH_serve.json."""
    from repro.serve.bench import run_bench

    if args.overload:
        return _serve_bench_overload(args)
    payload = run_bench(
        base_url=args.url,
        profile=args.profile,
        n_requests=args.requests,
        concurrency=args.concurrency,
        skew=args.skew,
        seed=args.seed,
        technique=args.technique,
        kernel=args.kernel,
        policy=args.policy,
        store_dir=args.store_dir,
        timeout=args.timeout,
    )
    client = payload["client"]

    def _fmt(value) -> str:
        return "-" if value is None else f"{float(value) * 1e3:.2f}ms"

    rows = [
        [
            name,
            client[name]["count"],
            _fmt(client[name]["p50"]),
            _fmt(client[name]["p99"]),
        ]
        for name in ("overall", "hit", "miss", "coalesced", "degraded")
    ]
    print(render_table(["class", "requests", "p50", "p99"], rows))
    hit_rate = payload["store_hit_rate"]
    speedup = payload["hit_speedup_p50"]
    print(f"store hit rate: {hit_rate:.1%}")
    if speedup is not None:
        print(f"hit-path p50 speedup over miss path: {speedup:.1f}x")
    server_speedup = payload["hit_speedup_p50_server"]
    if server_speedup is not None:
        print(f"server-side hit-path p50 speedup: {server_speedup:.1f}x")
    errors = payload["requests"]["errors"]
    if errors:
        print(f"errors by status: {errors}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    ledger = getattr(args, "_ledger", None)
    if ledger is not None:
        ledger.record("serve_bench", payload)
    if args.min_hit_rate is not None and hit_rate < args.min_hit_rate:
        print(
            f"serve-bench gate: FAIL (hit rate {hit_rate:.1%} < "
            f"{args.min_hit_rate:.1%})",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_bench_overload(args: argparse.Namespace) -> int:
    """``repro serve-bench --overload`` — shed-path load harness."""
    from repro.serve.bench import run_overload_bench

    if args.url:
        print(
            "repro: error: --overload spawns its own calibration and "
            "overload servers; --url is not supported",
            file=sys.stderr,
        )
        return 2
    payload = run_overload_bench(
        profile=args.profile,
        n_requests=args.requests,
        offered_factor=args.offered_factor,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        technique=args.technique,
        policy=args.policy,
        seed=args.seed,
        timeout=args.timeout,
    )
    over = payload["overload"]

    def _ms(value) -> str:
        return "-" if value is None else f"{float(value) * 1e3:.2f}ms"

    rows = [
        ["offered load", f"{over['offered_factor']:g}x capacity "
                         f"({over['requests']} requests)"],
        ["accepted", over["accepted"]],
        ["shed (429)", over["shed"]],
        ["errors", sum(over["errors"].values())],
        ["goodput", f"{over['goodput_rps']:.1f} req/s"],
        ["shed rate", f"{over['shed_rate']:.1%}"],
        ["accepted p99", _ms(over["accepted_p99"])],
        ["baseline p99", _ms(over["baseline_p99"])],
        ["p99 ratio", "-" if over["p99_ratio"] is None else f"{over['p99_ratio']:.2f}x"],
    ]
    print(render_table(["overload", "value"], rows))
    if over["errors"]:
        print(f"errors by class: {over['errors']}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    ledger = getattr(args, "_ledger", None)
    if ledger is not None:
        ledger.record("serve_bench_overload", payload)
    failed = False
    if over["errors"].get("500"):
        print(
            f"serve-bench overload gate: FAIL ({over['errors']['500']} "
            "HTTP 500s — overload must shed, never error)",
            file=sys.stderr,
        )
        failed = True
    if args.min_goodput is not None and (
        over["goodput_rps"] is None or over["goodput_rps"] < args.min_goodput
    ):
        print(
            f"serve-bench overload gate: FAIL (goodput "
            f"{over['goodput_rps']:.2f} req/s < {args.min_goodput:g})",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_predict_validate(args: argparse.Namespace) -> int:
    from repro.predict.validate import DEFAULT_MIN_SPEARMAN, fit_and_validate

    floor = args.min_spearman if args.min_spearman is not None else DEFAULT_MIN_SPEARMAN
    _, result = fit_and_validate(
        profile=args.profile,
        kernel=args.kernel,
        min_spearman=floor,
        cache_dir=args.cache_dir,
    )
    print(
        f"predictor: kernel={result.kernel} platform={result.platform} "
        f"({result.n_matrices} matrices, {result.n_cells} cells)"
    )
    print(f"spearman (calibration): {result.spearman_fit:.3f}")
    print(f"spearman (leave-one-matrix-out): {result.spearman_loo:.3f}")
    for technique, rho in sorted(result.per_technique.items()):
        print(f"  {technique}: {rho:.3f}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    if not result.passed:
        print(
            f"predict-validate gate: FAIL (spearman {result.spearman_fit:.3f} "
            f"< {floor:.3f})",
            file=sys.stderr,
        )
        return 1
    print(f"predict-validate gate: PASS (floor {floor:.3f})")
    return 0


def _cmd_version(args: argparse.Namespace) -> int:
    try:
        from repro import __version__ as version
    except ImportError:  # pragma: no cover - fallback for odd installs
        from importlib.metadata import version as dist_version

        version = dist_version("repro")
    print(f"repro {version}")
    return 0


def _cmd_techniques(args: argparse.Namespace) -> int:
    for name in available_techniques():
        print(name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
