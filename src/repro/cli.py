"""Command-line interface.

Examples::

    repro corpus list --profile bench
    repro metrics soc-forum
    repro evaluate soc-forum --technique rabbit++
    repro experiment fig2 --profile bench
    repro export soc-forum /tmp/soc-forum.mtx
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.report import render_table
from repro.experiments.run_all import ABLATIONS, DRIVERS, run_experiment
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import PROFILES, load_matrix, selection_report
from repro.graphs.io import write_matrix_market
from repro.reorder.registry import available_techniques


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Community-based matrix reordering reproduction (ISPASS 2023)",
    )
    subparsers = parser.add_subparsers(dest="command")

    corpus = subparsers.add_parser("corpus", help="inspect the input corpus")
    corpus.add_argument("action", choices=["list"])
    corpus.add_argument("--profile", default="full", choices=PROFILES)
    corpus.set_defaults(handler=_cmd_corpus)

    export = subparsers.add_parser("export", help="write a corpus matrix as MatrixMarket")
    export.add_argument("matrix")
    export.add_argument("path")
    export.set_defaults(handler=_cmd_export)

    metrics = subparsers.add_parser("metrics", help="structure metrics of a matrix")
    metrics.add_argument("matrix")
    metrics.add_argument("--profile", default="full", choices=PROFILES)
    metrics.set_defaults(handler=_cmd_metrics)

    evaluate = subparsers.add_parser("evaluate", help="model one reordered kernel run")
    evaluate.add_argument("matrix")
    evaluate.add_argument("--technique", default="rabbit++", choices=available_techniques())
    evaluate.add_argument("--kernel", default="spmv-csr")
    evaluate.add_argument("--policy", default="lru", choices=["lru", "belady"])
    evaluate.add_argument("--profile", default="full", choices=PROFILES)
    evaluate.set_defaults(handler=_cmd_evaluate)

    experiment = subparsers.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "name", choices=sorted(DRIVERS) + sorted(ABLATIONS) + ["all"]
    )
    experiment.add_argument("--profile", default="full", choices=PROFILES)
    experiment.add_argument(
        "--figure",
        action="store_true",
        help="also render an ASCII bar chart over the first numeric column",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    techniques = subparsers.add_parser("techniques", help="list reordering techniques")
    techniques.set_defaults(handler=_cmd_techniques)
    return parser


def _cmd_corpus(args: argparse.Namespace) -> int:
    records = selection_report(args.profile)
    rows = [
        [r.name, r.category, r.n_nodes, r.nnz, f"{r.avg_degree:.2f}",
         "yes" if r.selected else f"no ({r.reason})"]
        for r in records
    ]
    print(render_table(["matrix", "category", "nodes", "nnz", "avg_deg", "selected"], rows))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    matrix = load_matrix(args.matrix)
    write_matrix_market(matrix, args.path, comment=f"repro corpus entry {args.matrix}")
    print(f"wrote {args.matrix} ({matrix.shape}, nnz={matrix.nnz}) to {args.path}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(args.profile)
    metrics = runner.matrix_metrics(args.matrix)
    for key, value in sorted(metrics.to_json().items()):
        print(f"{key:32s} {value}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(args.profile)
    record = runner.run(
        args.matrix, args.technique, kernel=args.kernel, policy=args.policy
    )
    for key, value in sorted(record.to_json().items()):
        print(f"{key:24s} {value}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = sorted(DRIVERS) if args.name == "all" else [args.name]
    runner = ExperimentRunner(args.profile)
    for name in names:
        report = run_experiment(name, profile=args.profile, runner=runner)
        print(report.to_text())
        if getattr(args, "figure", False):
            column = _first_numeric_column(report.rows)
            if column is not None:
                print()
                print(report.to_figure(value_column=column))
        print()
    return 0


def _first_numeric_column(rows) -> Optional[int]:
    if not rows:
        return None
    for column, value in enumerate(rows[0]):
        if column > 0 and isinstance(value, float):
            return column
    return None


def _cmd_techniques(args: argparse.Namespace) -> int:
    for name in available_techniques():
        print(name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
