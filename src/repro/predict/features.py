"""Cheap structural features for reordering-effectiveness prediction.

Every feature is computable from the *original* matrix structure plus
one RABBIT community detection — no candidate reordering, no trace, no
cache simulation — which is what makes the predictor orders of
magnitude cheaper than the brute-force evaluation it replaces.  The
feature set follows arXiv 2506.10356: size/density, degree skew
(hub concentration), community insularity, bandwidth/span locality,
and working-set-to-cache footprint ratios.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ValidationError
from repro.gpu.specs import PlatformSpec
from repro.graphs.graph import Graph
from repro.metrics.degree_stats import gini_coefficient
from repro.metrics.insularity import insular_node_fraction, insularity
from repro.metrics.locality import (
    average_neighbor_span,
    hub_cache_footprint_bytes,
    matrix_bandwidth,
)
from repro.metrics.skew import degree_skew
from repro.sparse.csr import CSRMatrix
from repro.trace.kernelspec import KernelSpec

#: Feature order of :func:`feature_vector`; model coefficients are
#: stored against these names, so append-only.
FEATURE_NAMES = (
    "log_nodes",
    "log_nnz",
    "avg_degree",
    "log_density",
    "skew",
    "gini",
    "insularity",
    "insular_fraction",
    "norm_bandwidth",
    "norm_span",
    "log_x_footprint_ratio",
    "log_hub_footprint_ratio",
)


def structural_features(
    matrix: Union[CSRMatrix, Graph],
    platform: PlatformSpec,
    assignment=None,
    element_bytes: int = 4,
) -> Dict[str, float]:
    """Feature dict (:data:`FEATURE_NAMES` keys) for one matrix.

    ``assignment`` is an optional precomputed community assignment
    (e.g. from :meth:`ExperimentRunner.detection`); when omitted, one
    RABBIT detection runs here — the only non-trivial cost of the
    extraction.
    """
    graph = matrix if isinstance(matrix, Graph) else Graph(matrix)
    csr = graph.adjacency
    n = csr.n_rows
    nnz = csr.nnz
    if n == 0:
        raise ValidationError("structural features of an empty matrix are undefined")
    if assignment is None:
        from repro.reorder.rabbit import RabbitOrder

        assignment = RabbitOrder().detect(graph).assignment
    degrees = np.asarray(graph.to_undirected().out_degrees(), dtype=np.int64)
    hub_count = max(1, n // 10)
    hubs = np.argsort(degrees, kind="stable")[-hub_count:]
    l2 = float(platform.l2_capacity_bytes)
    x_bytes = float(n * element_bytes)
    hub_bytes = float(
        hub_cache_footprint_bytes(
            hubs, element_bytes=element_bytes, line_bytes=platform.line_bytes
        )
    )
    return {
        "log_nodes": math.log(n),
        "log_nnz": math.log(nnz + 1),
        "avg_degree": nnz / n,
        "log_density": math.log((nnz + 1) / (float(n) * n)),
        "skew": degree_skew(graph) if nnz else 0.0,
        "gini": gini_coefficient(degrees) if degrees.size else 0.0,
        "insularity": insularity(graph, assignment),
        "insular_fraction": insular_node_fraction(graph, assignment),
        "norm_bandwidth": matrix_bandwidth(csr) / n,
        "norm_span": average_neighbor_span(csr) / n,
        "log_x_footprint_ratio": math.log(x_bytes / l2 + 1e-12),
        "log_hub_footprint_ratio": math.log(hub_bytes / l2 + 1e-12),
    }


def feature_vector(features: Dict[str, float]) -> np.ndarray:
    """Feature dict -> ordered vector (the model's input layout)."""
    try:
        return np.array([float(features[name]) for name in FEATURE_NAMES], dtype=np.float64)
    except KeyError as exc:
        raise ValidationError(f"feature dict is missing {exc.args[0]!r}") from None


def analytic_compulsory_bytes(
    matrix: Union[CSRMatrix, Graph],
    kernel: Union[str, KernelSpec],
    element_bytes: int = 4,
) -> int:
    """Closed-form compulsory traffic of ``kernel`` on ``matrix``.

    Mirrors the per-builder ``analytic_compulsory_bytes`` formulas in
    :mod:`repro.trace.kernel_traces` without building a trace, so the
    predictor can turn predicted normalized run times into absolute
    seconds.  SpGEMM is the one kernel needing real work (its output
    size requires the symbolic phase, still far cheaper than a trace).
    """
    spec = KernelSpec.coerce(kernel)
    csr = matrix.adjacency if isinstance(matrix, Graph) else matrix
    n = csr.n_rows
    nnz = csr.nnz
    if spec.kind == "spmv-csr":
        return (2 * n + (n + 1) + 2 * nnz) * element_bytes
    if spec.kind == "spmv-coo":
        return (2 * n + 3 * nnz) * element_bytes
    if spec.kind == "spmv-csc":
        return (2 * n + (csr.n_cols + 1) + 2 * nnz) * element_bytes
    if spec.kind == "spmm-csr":
        return ((n + 1) + 2 * nnz + 2 * n * spec.k) * element_bytes
    if spec.kind == "spgemm-csr":
        from repro.trace.kernel_traces import spgemm_csr_structure

        c_row_nnz, _flops = spgemm_csr_structure(csr)
        return (3 * (n + 1) + 4 * nnz + 2 * int(c_row_nnz.sum())) * element_bytes
    raise ValidationError(
        f"no analytic compulsory-traffic formula for kernel kind {spec.kind!r}"
    )


def analytic_ideal_seconds(
    matrix: Union[CSRMatrix, Graph],
    kernel: Union[str, KernelSpec],
    platform: PlatformSpec,
    element_bytes: int = 4,
) -> float:
    """Analytic compulsory traffic moved at achievable bandwidth."""
    compulsory = analytic_compulsory_bytes(matrix, kernel, element_bytes=element_bytes)
    return compulsory / platform.achievable_bandwidth_bytes_per_s
