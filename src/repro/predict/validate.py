"""Fit + validate the predictor against the simulator (the CI gate).

Two numbers come out of a validation run:

* ``spearman_fit`` — rank correlation between predicted and
  simulator-measured traffic reduction across every
  (matrix, technique) cell, with the model fitted on all cells.  This
  is the *calibration* lock the CI gate enforces (ISSUE 8 acceptance:
  >= 0.8): if the cheap features cannot even rank the cells they were
  fitted on, they carry no signal worth serving.
* ``spearman_loo`` — the same correlation under leave-one-matrix-out
  refits, an honest (if noisy, on the 6-matrix test corpus)
  generalization estimate.  Reported, not gated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.experiments.runner import ExperimentRunner
from repro.predict.dataset import DEFAULT_TECHNIQUES, PredictorDataset, build_dataset
from repro.predict.model import DEFAULT_L2, TrafficPredictor, spearman

#: CI floor on the calibration rank correlation.
DEFAULT_MIN_SPEARMAN = 0.8


@dataclass
class ValidationResult:
    """Outcome of one fit-and-validate pass."""

    kernel: str
    platform: str
    n_matrices: int
    n_cells: int
    spearman_fit: float
    spearman_loo: float
    per_technique: Dict[str, float] = field(default_factory=dict)
    min_spearman: float = DEFAULT_MIN_SPEARMAN

    @property
    def passed(self) -> bool:
        return self.spearman_fit >= self.min_spearman

    def to_json(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "platform": self.platform,
            "n_matrices": self.n_matrices,
            "n_cells": self.n_cells,
            "spearman_fit": self.spearman_fit,
            "spearman_loo": self.spearman_loo,
            "per_technique": self.per_technique,
            "min_spearman": self.min_spearman,
            "passed": self.passed,
        }


def _predicted_reductions(predictor: TrafficPredictor, rows) -> list:
    return [
        predictor.predict_cell(row["features"], str(row["technique"]))["traffic_reduction"]
        for row in rows
    ]


def fit_predictor(
    profile: str = "test",
    kernel: str = "spmv-csr",
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    runner: Optional[ExperimentRunner] = None,
    cache_dir: Optional[str] = None,
    l2: float = DEFAULT_L2,
) -> TrafficPredictor:
    """Build the corpus dataset for ``profile`` and fit a predictor."""
    runner = runner if runner is not None else ExperimentRunner(profile, cache_dir=cache_dir)
    dataset = build_dataset(runner, kernel=kernel, techniques=techniques)
    return TrafficPredictor.fit(dataset, l2=l2)


def fit_and_validate(
    profile: str = "test",
    kernel: str = "spmv-csr",
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    min_spearman: float = DEFAULT_MIN_SPEARMAN,
    runner: Optional[ExperimentRunner] = None,
    cache_dir: Optional[str] = None,
    l2: float = DEFAULT_L2,
) -> Tuple[TrafficPredictor, ValidationResult]:
    """Fit on the corpus, rank-correlate against the simulator."""
    runner = runner if runner is not None else ExperimentRunner(profile, cache_dir=cache_dir)
    dataset = build_dataset(runner, kernel=kernel, techniques=techniques)
    if len(dataset.matrices) < 2:
        raise ValidationError(
            f"profile {profile!r} has {len(dataset.matrices)} matrices; "
            "validation needs at least 2"
        )
    predictor = TrafficPredictor.fit(dataset, l2=l2)

    measured = [float(row["traffic_reduction"]) for row in dataset.rows]
    predicted = _predicted_reductions(predictor, dataset.rows)
    spearman_fit = spearman(predicted, measured)

    per_technique: Dict[str, float] = {}
    for technique in dataset.techniques:
        rows = [row for row in dataset.rows if row["technique"] == technique]
        if len(rows) >= 2:
            per_technique[technique] = spearman(
                _predicted_reductions(predictor, rows),
                [float(row["traffic_reduction"]) for row in rows],
            )

    loo_predicted = []
    loo_measured = []
    matrices = dataset.matrices
    for held_out in matrices:
        train = dataset.restrict([m for m in matrices if m != held_out])
        test = dataset.restrict([held_out])
        fold = TrafficPredictor.fit(train, l2=max(l2, 1e-2))
        loo_predicted.extend(_predicted_reductions(fold, test.rows))
        loo_measured.extend(float(row["traffic_reduction"]) for row in test.rows)

    result = ValidationResult(
        kernel=kernel,
        platform=runner.platform.name,
        n_matrices=len(matrices),
        n_cells=len(dataset.rows),
        spearman_fit=spearman_fit,
        spearman_loo=spearman(loo_predicted, loo_measured),
        per_technique=per_technique,
        min_spearman=min_spearman,
    )
    return predictor, result
