"""Ridge-regression effectiveness predictor.

One :class:`TrafficPredictor` holds, for a single (kernel, platform)
pair, a small per-technique family of linear models over the
standardized structural features:

* ``traffic_reduction`` — ``1 - traffic(tech) / traffic(original)``,
  the headline target the CI calibration gate rank-correlates against
  the simulator;
* ``log_runtime_ratio`` — log of ``modeled_seconds(tech) /
  modeled_seconds(original)`` (exponentiated at predict time, so the
  predicted ratio is always positive);
* ``log_reorder_seconds`` — log pre-processing cost, which makes the
  amortization break-even computable without running the reordering;

plus one baseline model (``log_norm_runtime``: log of the original
order's modeled seconds over the *analytic* ideal), which anchors the
predicted ratios to absolute seconds via the closed-form compulsory
traffic — no trace or simulation on the predict path.

Everything is plain numpy normal equations; models serialize to JSON
dicts (committed as pretrained coefficients by
:mod:`repro.predict.pretrained`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.predict.features import FEATURE_NAMES, feature_vector

#: Regularization keeping the normal equations well-posed on small
#: corpora (features >> matrices in the "test" profile).
DEFAULT_L2 = 1e-4

#: Per-technique target names (see module docstring).
TARGETS = ("traffic_reduction", "log_runtime_ratio", "log_reorder_seconds")

#: The baseline pseudo-technique's single target.
BASELINE_TARGET = "log_norm_runtime"


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Tie-averaged ranks (1-based), the Spearman convention."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    _, inverse, counts = np.unique(values[order], return_inverse=True, return_counts=True)
    ends = np.cumsum(counts)
    mean_rank = (ends - counts + 1 + ends) / 2.0
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = mean_rank[inverse]
    return ranks


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation with tie-averaged ranks."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"length mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValidationError("spearman needs at least two observations")
    ra = _average_ranks(a) - (a.size + 1) / 2.0
    rb = _average_ranks(b) - (b.size + 1) / 2.0
    denom = math.sqrt(float((ra * ra).sum()) * float((rb * rb).sum()))
    if denom == 0.0:
        return 0.0
    return float((ra * rb).sum() / denom)


@dataclass
class _Linear:
    """One standardized-feature linear model."""

    coef: np.ndarray
    intercept: float
    mean: np.ndarray
    scale: np.ndarray

    def predict(self, x: np.ndarray) -> float:
        z = (x - self.mean) / self.scale
        return float(z @ self.coef + self.intercept)

    def to_json(self) -> Dict[str, object]:
        return {
            "coef": [float(v) for v in self.coef],
            "intercept": float(self.intercept),
            "mean": [float(v) for v in self.mean],
            "scale": [float(v) for v in self.scale],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "_Linear":
        return cls(
            coef=np.asarray(payload["coef"], dtype=np.float64),
            intercept=float(payload["intercept"]),  # type: ignore[arg-type]
            mean=np.asarray(payload["mean"], dtype=np.float64),
            scale=np.asarray(payload["scale"], dtype=np.float64),
        )


def _fit_linear(X: np.ndarray, y: np.ndarray, l2: float) -> _Linear:
    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale[scale == 0.0] = 1.0
    Z = (X - mean) / scale
    y_mean = float(y.mean())
    yc = y - y_mean
    gram = Z.T @ Z + l2 * Z.shape[0] * np.eye(Z.shape[1])
    coef = np.linalg.solve(gram, Z.T @ yc)
    return _Linear(coef=coef, intercept=y_mean, mean=mean, scale=scale)


class TrafficPredictor:
    """Per-(kernel, platform) family of technique-effect models."""

    SCHEMA = 1

    def __init__(
        self,
        kernel: str,
        platform: str,
        models: Dict[str, Dict[str, _Linear]],
        baseline: _Linear,
        feature_names: Tuple[str, ...] = FEATURE_NAMES,
    ) -> None:
        self.kernel = kernel
        self.platform = platform
        self.models = models
        self.baseline = baseline
        self.feature_names = tuple(feature_names)

    @property
    def techniques(self) -> Tuple[str, ...]:
        return tuple(self.models)

    # -- prediction ------------------------------------------------------

    def predict_cell(self, features: Dict[str, float], technique: str) -> Dict[str, float]:
        """Predicted effect of ``technique`` on a matrix with ``features``.

        Returns ``traffic_reduction`` (fraction of baseline traffic
        saved; negative = reordering hurts), ``runtime_ratio``
        (reordered over baseline modeled seconds) and
        ``reorder_seconds`` (predicted pre-processing cost).
        """
        per_target = self.models.get(technique)
        if per_target is None:
            raise ValidationError(
                f"predictor has no model for technique {technique!r}; "
                f"fitted: {sorted(self.models)}"
            )
        x = feature_vector(features)
        return {
            "traffic_reduction": per_target["traffic_reduction"].predict(x),
            "runtime_ratio": math.exp(per_target["log_runtime_ratio"].predict(x)),
            "reorder_seconds": math.exp(per_target["log_reorder_seconds"].predict(x)),
        }

    def predict_baseline_norm_runtime(self, features: Dict[str, float]) -> float:
        """Predicted original-order ``modeled / analytic-ideal`` ratio."""
        return math.exp(self.baseline.predict(feature_vector(features)))

    # -- fitting ---------------------------------------------------------

    @classmethod
    def fit(cls, dataset, l2: float = DEFAULT_L2) -> "TrafficPredictor":
        """Fit from a :class:`~repro.predict.dataset.PredictorDataset`."""
        if not dataset.rows:
            raise ValidationError("cannot fit a predictor from an empty dataset")
        models: Dict[str, Dict[str, _Linear]] = {}
        for technique in dataset.techniques:
            rows = [row for row in dataset.rows if row["technique"] == technique]
            X = np.array([feature_vector(row["features"]) for row in rows])
            models[technique] = {
                "traffic_reduction": _fit_linear(
                    X, np.array([row["traffic_reduction"] for row in rows]), l2
                ),
                "log_runtime_ratio": _fit_linear(
                    X, np.log([max(row["runtime_ratio"], 1e-9) for row in rows]), l2
                ),
                "log_reorder_seconds": _fit_linear(
                    X, np.log([max(row["reorder_seconds"], 1e-9) for row in rows]), l2
                ),
            }
        base_rows = {row["matrix"]: row for row in dataset.rows}.values()
        Xb = np.array([feature_vector(row["features"]) for row in base_rows])
        yb = np.log([max(row["baseline_norm_runtime"], 1e-9) for row in base_rows])
        baseline = _fit_linear(Xb, yb, l2)
        return cls(
            kernel=dataset.kernel,
            platform=dataset.platform,
            models=models,
            baseline=baseline,
            feature_names=tuple(dataset.feature_names),
        )

    # -- serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": self.SCHEMA,
            "kernel": self.kernel,
            "platform": self.platform,
            "feature_names": list(self.feature_names),
            "baseline": self.baseline.to_json(),
            "models": {
                technique: {
                    target: model.to_json() for target, model in per_target.items()
                }
                for technique, per_target in self.models.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "TrafficPredictor":
        if payload.get("schema") != cls.SCHEMA:
            raise ValidationError(
                f"unsupported predictor schema {payload.get('schema')!r} "
                f"(expected {cls.SCHEMA})"
            )
        names = tuple(payload["feature_names"])  # type: ignore[arg-type]
        if names != FEATURE_NAMES:
            raise ValidationError(
                "predictor feature layout mismatch: payload has "
                f"{names}, this build expects {FEATURE_NAMES}"
            )
        models = {
            technique: {
                target: _Linear.from_json(model)
                for target, model in per_target.items()  # type: ignore[union-attr]
            }
            for technique, per_target in payload["models"].items()  # type: ignore[union-attr]
        }
        return cls(
            kernel=str(payload["kernel"]),
            platform=str(payload["platform"]),
            models=models,
            baseline=_Linear.from_json(payload["baseline"]),  # type: ignore[arg-type]
            feature_names=names,
        )
