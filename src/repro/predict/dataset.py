"""Simulator-labelled training cells for the effectiveness predictor.

Each cell is one (matrix, technique) pair: the structural features of
the *original* matrix next to the simulator-measured effect of the
reordering — traffic reduction, runtime ratio and reordering cost —
relative to the ``original`` baseline order.  Cells run through the
memoized :class:`~repro.experiments.runner.ExperimentRunner`, so
building a dataset twice (or after a sweep already simulated the same
cells) is nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentRunner
from repro.errors import ValidationError
from repro.predict.features import (
    FEATURE_NAMES,
    analytic_ideal_seconds,
    structural_features,
)

#: Techniques modelled by default — the serve tier's candidate list.
DEFAULT_TECHNIQUES = ("degsort", "rcm", "rabbit", "rabbit++")


@dataclass
class PredictorDataset:
    """Feature/target cells for one (kernel, platform) pair."""

    kernel: str
    platform: str
    techniques: Tuple[str, ...]
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    #: One dict per (matrix, technique) cell; see :func:`build_dataset`.
    rows: List[Dict[str, object]] = field(default_factory=list)

    @property
    def matrices(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(str(row["matrix"]), None)
        return tuple(seen)

    def restrict(self, matrices: Sequence[str]) -> "PredictorDataset":
        """Sub-dataset containing only the named matrices."""
        keep = set(matrices)
        return PredictorDataset(
            kernel=self.kernel,
            platform=self.platform,
            techniques=self.techniques,
            feature_names=self.feature_names,
            rows=[row for row in self.rows if row["matrix"] in keep],
        )


def build_dataset(
    runner: ExperimentRunner,
    kernel: str = "spmv-csr",
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    matrices: Optional[Sequence[str]] = None,
    policy: str = "lru",
) -> PredictorDataset:
    """Run the simulator across the corpus and collect labelled cells.

    For every matrix: one feature extraction (reusing the runner's
    memoized RABBIT detection), one baseline simulation, and one
    simulation per technique.
    """
    if not techniques:
        raise ValidationError("build_dataset needs at least one technique")
    names = list(matrices) if matrices is not None else runner.matrices()
    dataset = PredictorDataset(
        kernel=kernel,
        platform=runner.platform.name,
        techniques=tuple(techniques),
    )
    for matrix in names:
        graph = runner.graph(matrix)
        features = structural_features(
            graph, runner.platform, assignment=runner.detection(matrix).assignment
        )
        ideal = analytic_ideal_seconds(graph, kernel, runner.platform)
        baseline = runner.run(matrix, "original", kernel=kernel, policy=policy)
        for technique in techniques:
            record = runner.run(matrix, technique, kernel=kernel, policy=policy)
            traffic_ratio = (
                record.traffic_bytes / baseline.traffic_bytes
                if baseline.traffic_bytes
                else 1.0
            )
            runtime_ratio = (
                record.modeled_seconds / baseline.modeled_seconds
                if baseline.modeled_seconds
                else 1.0
            )
            dataset.rows.append(
                {
                    "matrix": matrix,
                    "technique": technique,
                    "features": features,
                    "traffic_reduction": 1.0 - traffic_ratio,
                    "runtime_ratio": runtime_ratio,
                    "reorder_seconds": runner.reorder_seconds(matrix, technique),
                    "baseline_norm_runtime": (
                        baseline.modeled_seconds / ideal if ideal else 1.0
                    ),
                    "baseline_modeled_seconds": baseline.modeled_seconds,
                    "measured_modeled_seconds": record.modeled_seconds,
                }
            )
    return dataset
