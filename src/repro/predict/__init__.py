"""Reordering-effectiveness prediction (arXiv 2506.10356).

"Is Sparse Matrix Reordering Effective for SpMV?" shows that a handful
of cheap structural features predict whether a matrix benefits from
reordering *before* paying the reordering cost.  This package maps the
structure metrics the repo already computes (insularity, degree skew,
bandwidth, cache-footprint ratios — :mod:`repro.metrics`) to predicted
per-(matrix, technique) traffic and run-time reductions, fitted against
the trace-driven simulator across the corpus:

* :mod:`repro.predict.features` — the feature extractor;
* :mod:`repro.predict.dataset` — simulator-labelled training cells
  built through the memoized :class:`~repro.experiments.runner.ExperimentRunner`;
* :mod:`repro.predict.model` — ridge-regression predictor with
  Spearman calibration utilities;
* :mod:`repro.predict.validate` — fit + validate, the CI gate;
* :mod:`repro.predict.pretrained` — committed coefficients so the
  serve tier recommends without fitting at request time.

The serve ``"technique": "auto"`` recommender consumes the predictor
(:mod:`repro.serve.service`), replacing the PR 7 brute-force candidate
sweep: a recommendation now costs one feature extraction instead of
one reorder + trace + simulation per candidate.
"""

from repro.predict.features import (
    FEATURE_NAMES,
    analytic_compulsory_bytes,
    feature_vector,
    structural_features,
)
from repro.predict.model import TrafficPredictor, spearman
from repro.predict.dataset import PredictorDataset, build_dataset
from repro.predict.validate import ValidationResult, fit_and_validate, fit_predictor
from repro.predict.pretrained import load_pretrained, pretrained_pairs

__all__ = [
    "FEATURE_NAMES",
    "PredictorDataset",
    "TrafficPredictor",
    "ValidationResult",
    "analytic_compulsory_bytes",
    "build_dataset",
    "feature_vector",
    "fit_and_validate",
    "fit_predictor",
    "load_pretrained",
    "pretrained_pairs",
    "spearman",
    "structural_features",
]
