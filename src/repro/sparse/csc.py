"""Compressed Sparse Column (CSC) matrix container.

The pull/push duality the paper references ([6], [9]): CSR-based SpMV
*gathers* through the input vector, CSC-based SpMV *scatters* into the
output vector.  Reordering helps both, because a symmetric relabeling
bounds the irregular range on either side.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import COOMatrix, INDEX_DTYPE, VALUE_DTYPE


class CSCMatrix:
    """A sparse matrix in Compressed Sparse Column format.

    Mirrors :class:`~repro.sparse.csr.CSRMatrix` with the roles of rows
    and columns exchanged: ``col_offsets`` has length ``n_cols + 1``
    and ``row_indices``/``values`` hold one entry per non-zero.
    """

    __slots__ = ("n_rows", "n_cols", "col_offsets", "row_indices", "values")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        col_offsets: object,
        row_indices: object,
        values: object = None,
    ) -> None:
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"matrix dimensions must be non-negative, got {n_rows}x{n_cols}")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        offsets = np.asarray(col_offsets)
        if offsets.ndim != 1 or offsets.size != self.n_cols + 1:
            raise ShapeError(
                f"col_offsets must have length n_cols + 1 = {self.n_cols + 1}, "
                f"got shape {offsets.shape}"
            )
        if offsets.size and not np.issubdtype(offsets.dtype, np.integer):
            raise FormatError(f"col_offsets must hold integers, got dtype {offsets.dtype}")
        self.col_offsets = offsets.astype(INDEX_DTYPE, copy=False)

        indices = np.asarray(row_indices)
        if indices.ndim != 1:
            raise ShapeError(f"row_indices must be one-dimensional, got shape {indices.shape}")
        if indices.size and not np.issubdtype(indices.dtype, np.integer):
            raise FormatError(f"row_indices must hold integers, got dtype {indices.dtype}")
        self.row_indices = indices.astype(INDEX_DTYPE, copy=False)

        if values is None:
            self.values = np.ones(self.row_indices.size, dtype=VALUE_DTYPE)
        else:
            vals = np.asarray(values, dtype=VALUE_DTYPE)
            if vals.shape != self.row_indices.shape:
                raise ShapeError(
                    f"values shape {vals.shape} != row_indices shape {self.row_indices.shape}"
                )
            self.values = vals
        self._check_invariants()

    def _check_invariants(self) -> None:
        offsets = self.col_offsets
        if offsets[0] != 0:
            raise FormatError(f"col_offsets must start at 0, got {offsets[0]}")
        if offsets[-1] != self.row_indices.size:
            raise FormatError(
                f"col_offsets must end at nnz ({self.row_indices.size}), got {offsets[-1]}"
            )
        if np.any(np.diff(offsets) < 0):
            raise FormatError("col_offsets must be non-decreasing")
        if self.row_indices.size:
            lo = int(self.row_indices.min())
            hi = int(self.row_indices.max())
            if lo < 0 or hi >= self.n_rows:
                raise FormatError(
                    f"row indices out of bounds for {self.n_rows} rows: [{lo}, {hi}]"
                )

    @property
    def nnz(self) -> int:
        return int(self.row_indices.size)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def col_degrees(self) -> np.ndarray:
        return np.diff(self.col_offsets)

    def col_slice(self, col: int) -> np.ndarray:
        if not 0 <= col < self.n_cols:
            raise IndexError(f"column {col} out of range for {self.n_cols} cols")
        return self.row_indices[self.col_offsets[col]: self.col_offsets[col + 1]]

    def col_values(self, col: int) -> np.ndarray:
        if not 0 <= col < self.n_cols:
            raise IndexError(f"column {col} out of range for {self.n_cols} cols")
        return self.values[self.col_offsets[col]: self.col_offsets[col + 1]]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        for col in range(self.n_cols):
            np.add.at(dense[:, col], self.col_slice(col), self.col_values(col))
        return dense

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Convert COO to CSC (entries sorted column-major, rows ascending)."""
    order = np.lexsort((coo.rows, coo.cols))
    cols = coo.cols[order]
    counts = np.bincount(cols, minlength=coo.n_cols)
    col_offsets = np.zeros(coo.n_cols + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=col_offsets[1:])
    return CSCMatrix(
        coo.n_rows, coo.n_cols, col_offsets, coo.rows[order], coo.values[order]
    )


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """Convert CSC back to COO (column-major entry order)."""
    cols = np.repeat(np.arange(csc.n_cols, dtype=INDEX_DTYPE), np.diff(csc.col_offsets))
    return COOMatrix(csc.n_rows, csc.n_cols, csc.row_indices.copy(), cols, csc.values.copy())


def spmv_csc(matrix: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` with ``A`` in CSC format (scatter-style)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(
            f"input vector has shape {x.shape}, expected ({matrix.n_cols},)"
        )
    y = np.zeros(matrix.n_rows, dtype=np.float64)
    col_of_entry = np.repeat(
        np.arange(matrix.n_cols, dtype=INDEX_DTYPE), np.diff(matrix.col_offsets)
    )
    np.add.at(y, matrix.row_indices, matrix.values * x[col_of_entry])
    return y
