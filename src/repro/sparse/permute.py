"""Symmetric (row + column) permutation of square sparse matrices.

Matrix reordering assigns every node a new ID; applying that assignment
to a matrix means relabeling both rows and columns with the same
permutation so the matrix still represents the same graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix, INDEX_DTYPE
from repro.sparse.csr import CSRMatrix


def check_permutation(perm: np.ndarray, n: int) -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``range(n)``.

    ``perm[old_id] == new_id`` is the convention used across the
    library.  Returns the validated array as ``int64``.
    """
    array = np.asarray(perm)
    if array.ndim != 1 or array.size != n:
        raise ShapeError(f"permutation must have shape ({n},), got {array.shape}")
    if array.size and not np.issubdtype(array.dtype, np.integer):
        raise ValidationError(f"permutation must hold integers, got dtype {array.dtype}")
    array = array.astype(INDEX_DTYPE, copy=False)
    seen = np.zeros(n, dtype=bool)
    if array.size:
        if array.min() < 0 or array.max() >= n:
            raise ValidationError(
                f"permutation entries out of range [0, {n}): "
                f"[{array.min()}, {array.max()}]"
            )
        seen[array] = True
        if not seen.all():
            raise ValidationError("permutation has repeated entries")
    return array


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse mapping (``new_id -> old_id``)."""
    perm = check_permutation(perm, len(perm))
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size, dtype=perm.dtype)
    return inverse


def permute_symmetric(csr: CSRMatrix, perm: np.ndarray, sort_within_rows: bool = True) -> CSRMatrix:
    """Relabel rows and columns of a square CSR matrix.

    Entry ``A[i, j]`` of the input appears at ``B[perm[i], perm[j]]`` in
    the output.
    """
    if not csr.is_square:
        raise ShapeError(f"symmetric permutation requires a square matrix, got {csr.shape}")
    perm = check_permutation(perm, csr.n_rows)
    coo = csr_to_coo(csr)
    relabeled = COOMatrix(
        coo.n_rows,
        coo.n_cols,
        perm[coo.rows],
        perm[coo.cols],
        coo.values,
    )
    return coo_to_csr(relabeled, sort_within_rows=sort_within_rows)


def permute_coo(coo: COOMatrix, perm: np.ndarray) -> COOMatrix:
    """Relabel rows and columns of a square COO matrix."""
    if not coo.is_square:
        raise ShapeError(f"symmetric permutation requires a square matrix, got {coo.shape}")
    perm = check_permutation(perm, coo.n_rows)
    return COOMatrix(coo.n_rows, coo.n_cols, perm[coo.rows], perm[coo.cols], coo.values.copy())
