"""Conversions between the COO and CSR formats."""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix, INDEX_DTYPE
from repro.sparse.csr import CSRMatrix


def coo_to_csr(coo: COOMatrix, sort_within_rows: bool = True) -> CSRMatrix:
    """Convert a COO matrix to CSR.

    Duplicate coordinates are preserved as separate entries (merge them
    first with :func:`repro.sparse.ops.merge_duplicates` if needed).

    Parameters
    ----------
    coo:
        Source matrix.
    sort_within_rows:
        When true (default), entries within each row are ordered by
        column index; otherwise the relative COO order is kept, which
        matters when reproducing "arbitrary CSR content order".
    """
    if sort_within_rows:
        order = np.lexsort((coo.cols, coo.rows))
    else:
        order = np.argsort(coo.rows, kind="stable")
    rows = coo.rows[order]
    counts = np.bincount(rows, minlength=coo.n_rows)
    row_offsets = np.zeros(coo.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=row_offsets[1:])
    return CSRMatrix(
        coo.n_rows,
        coo.n_cols,
        row_offsets,
        coo.cols[order],
        coo.values[order],
    )


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Convert a CSR matrix to COO, preserving in-row entry order."""
    rows = np.repeat(
        np.arange(csr.n_rows, dtype=INDEX_DTYPE), np.diff(csr.row_offsets)
    )
    return COOMatrix(
        csr.n_rows,
        csr.n_cols,
        rows,
        csr.col_indices.copy(),
        csr.values.copy(),
    )
