"""Masking a matrix down to a subset of nodes.

Used by the Figure 6 experiment: the paper evaluates SpMV's DRAM
traffic on "just the insular sub-matrix (evaluated by masking all
non-zeros that do not connect to insular nodes)".  The masked matrix
keeps the original dimensions so node IDs stay comparable; only the
non-zeros change.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

_MODES = ("either", "both", "row", "col")


def restrict_to_nodes(csr: CSRMatrix, node_mask: np.ndarray, mode: str = "either") -> CSRMatrix:
    """Keep only non-zeros that touch nodes selected by ``node_mask``.

    Parameters
    ----------
    csr:
        Square source matrix.
    node_mask:
        Boolean array of length ``n_rows``; ``True`` marks selected nodes.
    mode:
        ``"either"`` keeps a non-zero if its row *or* column is selected
        (the paper's "connect to insular nodes" criterion), ``"both"``
        requires both endpoints, ``"row"``/``"col"`` look at a single
        endpoint.
    """
    if not csr.is_square:
        raise ShapeError(f"node masking requires a square matrix, got {csr.shape}")
    if mode not in _MODES:
        raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
    node_mask = np.asarray(node_mask, dtype=bool)
    if node_mask.shape != (csr.n_rows,):
        raise ShapeError(
            f"node_mask has shape {node_mask.shape}, expected ({csr.n_rows},)"
        )
    coo = csr_to_coo(csr)
    row_selected = node_mask[coo.rows]
    col_selected = node_mask[coo.cols]
    if mode == "either":
        keep = row_selected | col_selected
    elif mode == "both":
        keep = row_selected & col_selected
    elif mode == "row":
        keep = row_selected
    else:
        keep = col_selected
    masked = COOMatrix(
        coo.n_rows, coo.n_cols, coo.rows[keep], coo.cols[keep], coo.values[keep]
    )
    return coo_to_csr(masked)
