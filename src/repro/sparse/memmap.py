"""Memory-mapped CSR storage for out-of-core matrices.

A matrix too large for RAM lives as a directory of raw array files plus
a checksummed metadata document::

    <dir>/
      meta.json         # integrity envelope (repro.resilience.integrity)
      row_offsets.bin   # int64,  n_rows + 1 entries
      col_indices.bin   # int64,  nnz entries
      values.bin        # float64, nnz entries

:func:`load_csr_memmap` maps the arrays with ``np.memmap`` and builds a
regular :class:`~repro.sparse.csr.CSRMatrix` around them via the
trusted ``from_verified_arrays`` path, so every downstream consumer —
community detection, reordering techniques, the kernels — sees the
usual CSR interface while the OS pages nnz-sized data in on demand.
The CSR invariants are verified **once, at save time**, and recorded in
``meta.json``; the load path re-checks only the metadata checksum and
the byte length of each array file, which catches truncation and
swapped files without touching array contents.

``meta.json`` also records a sha256 per array.  Verifying those hashes
pages everything in, so it is opt-in (``load_csr_memmap(...,
verify_arrays=True)`` and ``repro doctor``-style audits), not part of
the routine load.

Writes are crash-safe: arrays and metadata land in a ``<dir>.tmp.*``
staging directory that is atomically renamed over the target, so a
reader never sees a half-written matrix.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import CacheIntegrityError, FormatError
from repro.resilience.integrity import unique_tmp_path, unwrap_document, wrap_payload
from repro.sparse.coo import INDEX_DTYPE, VALUE_DTYPE
from repro.sparse.csr import CSRMatrix

#: Bump when the on-disk layout changes; loaders reject other versions.
MEMMAP_FORMAT_VERSION = 1

META_FILENAME = "meta.json"

_ARRAY_FILES = ("row_offsets.bin", "col_indices.bin", "values.bin")

#: Elements copied per chunk when streaming arrays to/from disk (64 MB
#: of float64); bounds the writer's resident set regardless of nnz.
_COPY_CHUNK = 8 << 20


def _iter_chunks(array: np.ndarray) -> Iterator[np.ndarray]:
    for start in range(0, array.size, _COPY_CHUNK):
        yield array[start: start + _COPY_CHUNK]


def _write_array(path: str, array: np.ndarray, dtype: np.dtype) -> str:
    """Stream ``array`` to ``path`` as raw ``dtype`` bytes; sha256 hex."""
    digest = hashlib.sha256()
    with open(path, "wb") as handle:
        for chunk in _iter_chunks(array):
            data = np.ascontiguousarray(chunk, dtype=dtype).tobytes()
            digest.update(data)
            handle.write(data)
    return digest.hexdigest()


def _array_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 24), b""):
            digest.update(block)
    return digest.hexdigest()


def save_csr_memmap(
    matrix: CSRMatrix, directory: str, extra_meta: Optional[Dict[str, object]] = None
) -> str:
    """Persist a CSR matrix as a memmap directory; returns ``directory``.

    The matrix's invariants hold by construction (:class:`CSRMatrix`
    validates them), so the metadata this writes is a faithful record
    and :func:`load_csr_memmap` may skip the O(nnz) re-validation.
    ``extra_meta`` lands under the ``"extra"`` key (generator
    parameters, provenance notes).
    """
    staging = unique_tmp_path(directory)
    os.makedirs(staging)
    try:
        hashes = {
            "row_offsets.bin": _write_array(
                os.path.join(staging, "row_offsets.bin"),
                matrix.row_offsets,
                np.dtype(INDEX_DTYPE),
            ),
            "col_indices.bin": _write_array(
                os.path.join(staging, "col_indices.bin"),
                matrix.col_indices,
                np.dtype(INDEX_DTYPE),
            ),
            "values.bin": _write_array(
                os.path.join(staging, "values.bin"),
                matrix.values,
                np.dtype(VALUE_DTYPE),
            ),
        }
        payload: Dict[str, object] = {
            "format": "csr-memmap",
            "version": MEMMAP_FORMAT_VERSION,
            "n_rows": matrix.n_rows,
            "n_cols": matrix.n_cols,
            "nnz": matrix.nnz,
            "index_dtype": np.dtype(INDEX_DTYPE).str,
            "value_dtype": np.dtype(VALUE_DTYPE).str,
            "array_bytes": {
                "row_offsets.bin": (matrix.n_rows + 1) * np.dtype(INDEX_DTYPE).itemsize,
                "col_indices.bin": matrix.nnz * np.dtype(INDEX_DTYPE).itemsize,
                "values.bin": matrix.nnz * np.dtype(VALUE_DTYPE).itemsize,
            },
            "array_sha256": hashes,
            "extra": dict(extra_meta or {}),
        }
        with open(os.path.join(staging, META_FILENAME), "w", encoding="utf-8") as handle:
            json.dump(wrap_payload(payload), handle, indent=1, sort_keys=True)
        # Atomic publish: a concurrent saver of the same directory wins
        # last, and readers only ever see a complete directory.
        if os.path.isdir(directory):
            shutil.rmtree(directory)
        os.makedirs(os.path.dirname(os.path.abspath(directory)), exist_ok=True)
        os.replace(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return directory


def read_memmap_meta(directory: str) -> Dict[str, object]:
    """Load + verify ``meta.json``; raises :class:`CacheIntegrityError`."""
    meta_path = os.path.join(directory, META_FILENAME)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CacheIntegrityError(
            f"{meta_path}: unreadable memmap metadata ({type(exc).__name__}: {exc})"
        ) from exc
    payload = unwrap_document(document, source=meta_path)
    if payload.get("format") != "csr-memmap" or payload.get("version") != MEMMAP_FORMAT_VERSION:
        raise CacheIntegrityError(
            f"{meta_path}: not a csr-memmap v{MEMMAP_FORMAT_VERSION} directory "
            f"(format={payload.get('format')!r}, version={payload.get('version')!r})"
        )
    return payload


def _check_file_length(directory: str, name: str, expected: int) -> str:
    path = os.path.join(directory, name)
    try:
        actual = os.path.getsize(path)
    except OSError as exc:
        raise CacheIntegrityError(f"{path}: missing array file ({exc})") from exc
    if actual != expected:
        raise CacheIntegrityError(
            f"{path}: array file is {actual} bytes, metadata declares {expected}"
        )
    return path


def load_csr_memmap(
    directory: str, mode: str = "r", verify_arrays: bool = False
) -> CSRMatrix:
    """Open a memmap directory as a :class:`CSRMatrix`.

    ``mode`` is the ``np.memmap`` mode (default read-only).  The
    metadata envelope and per-array byte lengths are always verified;
    ``verify_arrays=True`` additionally re-hashes the array files
    (paging them in — an audit, not a routine load).
    """
    meta = read_memmap_meta(directory)
    if meta["index_dtype"] != np.dtype(INDEX_DTYPE).str or (
        meta["value_dtype"] != np.dtype(VALUE_DTYPE).str
    ):
        raise CacheIntegrityError(
            f"{directory}: foreign dtypes {meta['index_dtype']}/{meta['value_dtype']}"
        )
    n_rows = int(meta["n_rows"])  # type: ignore[arg-type]
    n_cols = int(meta["n_cols"])  # type: ignore[arg-type]
    nnz = int(meta["nnz"])  # type: ignore[arg-type]
    lengths: Dict[str, int] = meta["array_bytes"]  # type: ignore[assignment]
    paths = {
        name: _check_file_length(directory, name, int(lengths[name]))
        for name in _ARRAY_FILES
    }
    if verify_arrays:
        recorded: Dict[str, str] = meta["array_sha256"]  # type: ignore[assignment]
        for name, path in paths.items():
            actual = _array_sha256(path)
            if actual != recorded[name]:
                raise CacheIntegrityError(
                    f"{path}: array checksum mismatch "
                    f"(stored {recorded[name][:12]}…, computed {actual[:12]}…)"
                )
    row_offsets = np.memmap(
        paths["row_offsets.bin"], dtype=INDEX_DTYPE, mode=mode, shape=(n_rows + 1,)
    )
    if nnz:  # np.memmap rejects zero-length files
        col_indices = np.memmap(
            paths["col_indices.bin"], dtype=INDEX_DTYPE, mode=mode, shape=(nnz,)
        )
        values = np.memmap(paths["values.bin"], dtype=VALUE_DTYPE, mode=mode, shape=(nnz,))
    else:
        col_indices = np.empty(0, dtype=INDEX_DTYPE)
        values = np.empty(0, dtype=VALUE_DTYPE)
    return CSRMatrix.from_verified_arrays(n_rows, n_cols, row_offsets, col_indices, values)


def is_memmap_backed(matrix: CSRMatrix) -> bool:
    """Whether any of the matrix's arrays is an ``np.memmap``."""
    return any(
        isinstance(array, np.memmap)
        for array in (matrix.row_offsets, matrix.col_indices, matrix.values)
    )


# -- out-of-core COO -> CSR ---------------------------------------------


def csr_from_coo_chunks(
    chunks: Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    n_rows: int,
    n_cols: int,
    directory: str,
    extra_meta: Optional[Dict[str, object]] = None,
) -> CSRMatrix:
    """Build a memmap CSR from a *replayable* stream of COO chunks.

    ``chunks`` is a zero-argument callable returning a fresh iterator of
    ``(rows, cols, values)`` chunk triples; the stream is consumed twice
    (row histogram, then scatter), which is what keeps the build
    out-of-core — only one chunk plus the CSR memmaps are ever resident.

    Entry ordering matches :func:`repro.sparse.convert.coo_to_csr` with
    ``sort_within_rows=True``: within each row, entries are sorted by
    column with ties keeping stream order.  (The scatter places entries
    in stream order per row; a per-row-block stable sort by column then
    reproduces ``np.lexsort((cols, rows))`` exactly.)
    """
    if not callable(chunks):
        raise FormatError("chunks must be a callable returning a chunk iterator")
    counts = np.zeros(n_rows, dtype=INDEX_DTYPE)
    nnz = 0
    for rows, _, _ in chunks():
        counts += np.bincount(rows, minlength=n_rows).astype(INDEX_DTYPE)
        nnz += rows.size

    staging = unique_tmp_path(directory)
    os.makedirs(staging)
    try:
        offsets = np.memmap(
            os.path.join(staging, "row_offsets.bin"),
            dtype=INDEX_DTYPE, mode="w+", shape=(n_rows + 1,),
        )
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        if nnz:
            indices = np.memmap(
                os.path.join(staging, "col_indices.bin"),
                dtype=INDEX_DTYPE, mode="w+", shape=(nnz,),
            )
            vals = np.memmap(
                os.path.join(staging, "values.bin"),
                dtype=VALUE_DTYPE, mode="w+", shape=(nnz,),
            )
        else:
            open(os.path.join(staging, "col_indices.bin"), "wb").close()
            open(os.path.join(staging, "values.bin"), "wb").close()
            indices = np.empty(0, dtype=INDEX_DTYPE)
            vals = np.empty(0, dtype=VALUE_DTYPE)
        cursor = offsets[:-1].astype(INDEX_DTYPE)  # next free slot per row
        lowest_touched = n_rows
        highest_touched = 0
        for rows, cols, values in chunks():
            if rows.size == 0:
                continue
            if cols.size and (int(cols.min()) < 0 or int(cols.max()) >= n_cols):
                raise FormatError(
                    f"column indices out of bounds for {n_cols} cols: "
                    f"[{int(cols.min())}, {int(cols.max())}]"
                )
            # Stable per-chunk scatter: entries of one row within a
            # chunk land in stream order because the cumsum-of-bincount
            # offset trick enumerates them in order.
            order = np.argsort(rows, kind="stable")
            sorted_rows = rows[order]
            starts = cursor[sorted_rows]
            boundary = np.empty(sorted_rows.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = sorted_rows[1:] != sorted_rows[:-1]
            run_start = np.maximum.accumulate(
                np.where(boundary, np.arange(sorted_rows.size, dtype=INDEX_DTYPE), 0)
            )
            positions = starts + (
                np.arange(sorted_rows.size, dtype=INDEX_DTYPE) - run_start
            )
            indices[positions] = cols[order]
            vals[positions] = values[order]
            np.add.at(cursor, sorted_rows[boundary], np.diff(
                np.append(np.flatnonzero(boundary), sorted_rows.size)
            ).astype(INDEX_DTYPE))
            lowest_touched = min(lowest_touched, int(sorted_rows[0]))
            highest_touched = max(highest_touched, int(sorted_rows[-1]) + 1)
        if not np.array_equal(cursor, offsets[1:]):
            raise FormatError(
                "chunk stream changed between passes (row counts disagree)"
            )
        # Within-row column sort, one bounded row block at a time.
        _sort_rows_in_place(offsets, indices, vals, lowest_touched, highest_touched)
        if nnz:
            indices.flush()
            vals.flush()
        offsets.flush()
        matrix = CSRMatrix.from_verified_arrays(
            n_rows, n_cols, np.asarray(offsets), np.asarray(indices), np.asarray(vals)
        )
        hashes = {name: _array_sha256(os.path.join(staging, name)) for name in _ARRAY_FILES}
        payload: Dict[str, object] = {
            "format": "csr-memmap",
            "version": MEMMAP_FORMAT_VERSION,
            "n_rows": n_rows,
            "n_cols": n_cols,
            "nnz": nnz,
            "index_dtype": np.dtype(INDEX_DTYPE).str,
            "value_dtype": np.dtype(VALUE_DTYPE).str,
            "array_bytes": {
                "row_offsets.bin": (n_rows + 1) * np.dtype(INDEX_DTYPE).itemsize,
                "col_indices.bin": nnz * np.dtype(INDEX_DTYPE).itemsize,
                "values.bin": nnz * np.dtype(VALUE_DTYPE).itemsize,
            },
            "array_sha256": hashes,
            "extra": dict(extra_meta or {}),
        }
        with open(os.path.join(staging, META_FILENAME), "w", encoding="utf-8") as handle:
            json.dump(wrap_payload(payload), handle, indent=1, sort_keys=True)
        del matrix, offsets, indices, vals, cursor
        if os.path.isdir(directory):
            shutil.rmtree(directory)
        os.makedirs(os.path.dirname(os.path.abspath(directory)), exist_ok=True)
        os.replace(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return load_csr_memmap(directory, mode="r")


def stream_row_blocks(
    offsets: np.ndarray, n_rows: int, max_entries: int = _COPY_CHUNK
) -> Iterator[Tuple[int, int]]:
    """Row ranges ``[lo, hi)`` whose entry counts stay under the budget.

    A single row larger than the budget becomes its own block — it must
    materialize whole anyway.
    """
    row = 0
    while row < n_rows:
        start = int(offsets[row])
        end_row = row
        while end_row < n_rows and int(offsets[end_row + 1]) - start <= max_entries:
            end_row += 1
        end_row = max(end_row, row + 1)
        yield row, end_row
        row = end_row


def coo_chunks_from_csr(matrix: CSRMatrix, drop_loops: bool = False):
    """Replayable COO chunk stream over a CSR's entries, by row block.

    Suitable as the ``chunks`` argument of :func:`csr_from_coo_chunks`;
    each replay walks the rows afresh, so memmap-backed inputs stream
    without staying resident.
    """

    def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        offsets = matrix.row_offsets
        for row_lo, row_hi in stream_row_blocks(offsets, matrix.n_rows):
            start = int(offsets[row_lo])
            stop = int(offsets[row_hi])
            if stop == start:
                continue
            cols = np.asarray(matrix.col_indices[start:stop])
            vals = np.asarray(matrix.values[start:stop])
            rows = np.repeat(
                np.arange(row_lo, row_hi, dtype=INDEX_DTYPE),
                np.diff(np.asarray(offsets[row_lo: row_hi + 1], dtype=INDEX_DTYPE)),
            )
            if drop_loops:
                keep = rows != cols
                if not keep.all():
                    rows, cols, vals = rows[keep], cols[keep], vals[keep]
            yield rows, cols, vals

    return chunks


def _mirrored_chunks(matrix: CSRMatrix):
    """Each loop-free row block twice: forward and transposed."""
    base = coo_chunks_from_csr(matrix, drop_loops=True)

    def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for rows, cols, vals in base():
            yield rows, cols, vals
            yield cols, rows, vals

    return chunks


def _deduped_chunks(matrix: CSRMatrix):
    """Adjacent duplicate ``(row, col)`` runs summed, per row block.

    Correct only for row-major inputs with columns sorted within rows
    (what :func:`csr_from_coo_chunks` produces): duplicates are then
    adjacent and never straddle the row-aligned blocks.
    """
    base = coo_chunks_from_csr(matrix)

    def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for rows, cols, vals in base():
            boundary = np.empty(rows.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(boundary)
            yield rows[starts], cols[starts], np.add.reduceat(vals, starts)

    return chunks


def symmetrize_to_memmap(
    matrix: CSRMatrix, directory: str, extra_meta: Optional[Dict[str, object]] = None
) -> CSRMatrix:
    """Out-of-core ``A + A^T``: loops dropped, duplicate entries summed.

    The memmap equivalent of ``drop_self_loops`` + ``symmetrize`` from
    :mod:`repro.sparse.ops` — the exact pipeline ``Graph.to_undirected``
    runs — built in bounded row blocks via two
    :func:`csr_from_coo_chunks` passes: first the mirrored (undeduped)
    stream lands in a scratch directory so reciprocal entries become
    adjacent, then the dedup-merge stream builds the final matrix.

    Matches ``to_undirected`` bit-for-bit when the input has no
    duplicate ``(row, col)`` entries (every CSR built here): each output
    value sums at most two duplicates, and IEEE addition of two
    operands is commutative.  Inputs *with* duplicates may differ in
    the last ulp because the summation association differs.
    """
    if matrix.n_rows != matrix.n_cols:
        raise FormatError(
            f"symmetrize needs a square matrix, got {matrix.n_rows}x{matrix.n_cols}"
        )
    n = matrix.n_rows
    scratch = unique_tmp_path(directory + ".sym")
    try:
        undeduped = csr_from_coo_chunks(_mirrored_chunks(matrix), n, n, scratch)
        result = csr_from_coo_chunks(
            _deduped_chunks(undeduped), n, n, directory, extra_meta=extra_meta
        )
        del undeduped
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return result


def _sort_rows_in_place(
    offsets: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    row_lo: int,
    row_hi: int,
) -> None:
    """Stable-sort each row's entries by column, in bounded blocks.

    Processes runs of rows whose combined nnz stays under the copy
    chunk, sorting each block with one composite-key stable argsort —
    equivalent to per-row sorting because rows are disjoint key groups.
    """
    row = row_lo
    while row < row_hi:
        end_row = row
        start = int(offsets[row])
        while end_row < row_hi and int(offsets[end_row + 1]) - start <= _COPY_CHUNK:
            end_row += 1
        end_row = max(end_row, row + 1)  # a single giant row still sorts
        stop = int(offsets[end_row])
        if stop > start:
            block_rows = np.repeat(
                np.arange(row, end_row, dtype=INDEX_DTYPE),
                np.diff(offsets[row: end_row + 1]),
            )
            block_cols = np.asarray(indices[start:stop])
            order = np.lexsort((block_cols, block_rows))
            indices[start:stop] = block_cols[order]
            values[start:stop] = np.asarray(values[start:stop])[order]
        row = end_row
