"""Structural operations on sparse matrices.

These operate on COO (the format the generators emit) because every
operation here is a whole-matrix restructure for which COO's flat
triple arrays are the natural representation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix


def transpose(coo: COOMatrix) -> COOMatrix:
    """Swap rows and columns."""
    return COOMatrix(coo.n_cols, coo.n_rows, coo.cols.copy(), coo.rows.copy(), coo.values.copy())


def drop_self_loops(coo: COOMatrix) -> COOMatrix:
    """Remove entries on the main diagonal."""
    keep = coo.rows != coo.cols
    return COOMatrix(coo.n_rows, coo.n_cols, coo.rows[keep], coo.cols[keep], coo.values[keep])


def merge_duplicates(coo: COOMatrix) -> COOMatrix:
    """Combine duplicate coordinates by summing their values.

    The result is sorted in row-major order (a side effect of the
    grouping pass) with exactly one entry per distinct coordinate.
    """
    if coo.nnz == 0:
        return coo.copy()
    order = np.lexsort((coo.cols, coo.rows))
    rows = coo.rows[order]
    cols = coo.cols[order]
    values = coo.values[order]
    is_first = np.empty(rows.size, dtype=bool)
    is_first[0] = True
    is_first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    group = np.cumsum(is_first) - 1
    summed = np.zeros(int(group[-1]) + 1, dtype=values.dtype)
    np.add.at(summed, group, values)
    return COOMatrix(coo.n_rows, coo.n_cols, rows[is_first], cols[is_first], summed)


def symmetrize(coo: COOMatrix) -> COOMatrix:
    """Return the undirected version ``A + A^T`` with duplicates merged.

    Reordering techniques such as RABBIT run community detection on the
    undirected structure of the matrix, so directed inputs are
    symmetrized before detection.  Requires a square matrix.
    """
    if not coo.is_square:
        raise ShapeError(f"symmetrize requires a square matrix, got {coo.shape}")
    rows = np.concatenate([coo.rows, coo.cols])
    cols = np.concatenate([coo.cols, coo.rows])
    values = np.concatenate([coo.values, coo.values])
    return merge_duplicates(COOMatrix(coo.n_rows, coo.n_cols, rows, cols, values))


def is_symmetric(coo: COOMatrix) -> bool:
    """Whether the sparsity pattern and values are symmetric."""
    if not coo.is_square:
        return False
    merged = merge_duplicates(coo)
    flipped = merge_duplicates(transpose(coo))
    return merged == flipped
