"""Sparse-matrix substrate: formats, conversions, and reference kernels.

This subpackage provides the storage formats (:class:`COOMatrix`,
:class:`CSRMatrix`) and the reference sparse kernels (SpMV on CSR and
COO, SpMM on CSR) whose memory behaviour the rest of the library
analyses.  The kernels follow Algorithm 1 of the paper exactly: the CSR
arrays and the output vector stream, while the input vector is gathered
through the column-index array.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix, coo_to_csc, csc_to_coo, spmv_csc
from repro.sparse.csr import CSRMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.kernels import spmm_csr, spmv_coo, spmv_csr, spmv_csr_tiled
from repro.sparse.mask import restrict_to_nodes
from repro.sparse.memmap import (
    coo_chunks_from_csr,
    csr_from_coo_chunks,
    is_memmap_backed,
    load_csr_memmap,
    save_csr_memmap,
    stream_row_blocks,
    symmetrize_to_memmap,
)
from repro.sparse.ops import (
    drop_self_loops,
    merge_duplicates,
    symmetrize,
    transpose,
)
from repro.sparse.permute import permute_symmetric

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "coo_chunks_from_csr",
    "coo_to_csc",
    "coo_to_csr",
    "csc_to_coo",
    "csr_from_coo_chunks",
    "csr_to_coo",
    "drop_self_loops",
    "is_memmap_backed",
    "load_csr_memmap",
    "merge_duplicates",
    "save_csr_memmap",
    "permute_symmetric",
    "restrict_to_nodes",
    "spmm_csr",
    "spmv_coo",
    "spmv_csc",
    "spmv_csr",
    "spmv_csr_tiled",
    "stream_row_blocks",
    "symmetrize",
    "symmetrize_to_memmap",
    "transpose",
]
