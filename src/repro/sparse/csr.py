"""Compressed Sparse Row (CSR) matrix container.

CSR is the format every kernel and reordering technique in this library
operates on, mirroring the paper's Algorithm 1: ``row_offsets`` (length
``n_rows + 1``), ``col_indices`` and ``values`` (length ``nnz``).  The
input-vector gather ``X[col_indices[i]]`` is the irregular access whose
locality matrix reordering improves.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import INDEX_DTYPE, VALUE_DTYPE


class CSRMatrix:
    """A sparse matrix in Compressed Sparse Row format.

    Invariants enforced at construction time:

    * ``row_offsets`` has length ``n_rows + 1``, starts at 0, ends at
      ``nnz`` and is non-decreasing;
    * ``col_indices`` and ``values`` have equal length ``nnz``;
    * all column indices are in ``[0, n_cols)``.

    Column indices within a row are *not* required to be sorted (the
    paper's point is precisely that the contents of a CSR can be
    arbitrarily ordered); use :meth:`has_sorted_rows` to check and
    :meth:`sort_rows` to normalize.
    """

    __slots__ = ("n_rows", "n_cols", "row_offsets", "col_indices", "values")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        row_offsets: object,
        col_indices: object,
        values: object = None,
    ) -> None:
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"matrix dimensions must be non-negative, got {n_rows}x{n_cols}")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        offsets = np.asarray(row_offsets)
        if offsets.ndim != 1 or offsets.size != self.n_rows + 1:
            raise ShapeError(
                f"row_offsets must have length n_rows + 1 = {self.n_rows + 1}, "
                f"got shape {offsets.shape}"
            )
        if offsets.size and not np.issubdtype(offsets.dtype, np.integer):
            raise FormatError(f"row_offsets must hold integers, got dtype {offsets.dtype}")
        self.row_offsets = offsets.astype(INDEX_DTYPE, copy=False)

        indices = np.asarray(col_indices)
        if indices.ndim != 1:
            raise ShapeError(f"col_indices must be one-dimensional, got shape {indices.shape}")
        if indices.size and not np.issubdtype(indices.dtype, np.integer):
            raise FormatError(f"col_indices must hold integers, got dtype {indices.dtype}")
        self.col_indices = indices.astype(INDEX_DTYPE, copy=False)

        if values is None:
            self.values = np.ones(self.col_indices.size, dtype=VALUE_DTYPE)
        else:
            vals = np.asarray(values, dtype=VALUE_DTYPE)
            if vals.shape != self.col_indices.shape:
                raise ShapeError(
                    f"values shape {vals.shape} != col_indices shape {self.col_indices.shape}"
                )
            self.values = vals
        self._check_invariants()

    @classmethod
    def from_verified_arrays(
        cls,
        n_rows: int,
        n_cols: int,
        row_offsets: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
    ) -> "CSRMatrix":
        """Construct without the O(nnz) invariant scans.

        For arrays whose invariants were already established and recorded
        — e.g. a memory-mapped matrix whose checksummed metadata was
        written by :func:`repro.sparse.memmap.save_csr_memmap` at save
        time.  Running ``_check_invariants`` on an ``np.memmap`` would
        page the entire matrix into RAM, defeating the out-of-core path.
        Arrays must already carry the canonical dtypes
        (``INDEX_DTYPE``/``VALUE_DTYPE``) and lengths; only those cheap
        shape/dtype facts are re-checked here.
        """
        matrix = object.__new__(cls)
        matrix.n_rows = int(n_rows)
        matrix.n_cols = int(n_cols)
        if row_offsets.dtype != INDEX_DTYPE or col_indices.dtype != INDEX_DTYPE:
            raise FormatError(
                "from_verified_arrays requires canonical index dtype "
                f"{np.dtype(INDEX_DTYPE)}, got {row_offsets.dtype}/{col_indices.dtype}"
            )
        if values.dtype != VALUE_DTYPE:
            raise FormatError(
                f"from_verified_arrays requires canonical value dtype "
                f"{np.dtype(VALUE_DTYPE)}, got {values.dtype}"
            )
        if row_offsets.size != matrix.n_rows + 1:
            raise ShapeError(
                f"row_offsets must have length n_rows + 1 = {matrix.n_rows + 1}, "
                f"got shape {row_offsets.shape}"
            )
        if values.shape != col_indices.shape:
            raise ShapeError(
                f"values shape {values.shape} != col_indices shape {col_indices.shape}"
            )
        matrix.row_offsets = row_offsets
        matrix.col_indices = col_indices
        matrix.values = values
        return matrix

    def _check_invariants(self) -> None:
        offsets = self.row_offsets
        if offsets[0] != 0:
            raise FormatError(f"row_offsets must start at 0, got {offsets[0]}")
        if offsets[-1] != self.col_indices.size:
            raise FormatError(
                f"row_offsets must end at nnz ({self.col_indices.size}), got {offsets[-1]}"
            )
        if np.any(np.diff(offsets) < 0):
            raise FormatError("row_offsets must be non-decreasing")
        if self.col_indices.size:
            lo = int(self.col_indices.min())
            hi = int(self.col_indices.max())
            if lo < 0 or hi >= self.n_cols:
                raise FormatError(
                    f"column indices out of bounds for {self.n_cols} cols: [{lo}, {hi}]"
                )

    @property
    def nnz(self) -> int:
        return int(self.col_indices.size)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def row_degrees(self) -> np.ndarray:
        """Out-degree (non-zeros per row)."""
        return np.diff(self.row_offsets)

    def col_degrees(self) -> np.ndarray:
        """In-degree (non-zeros per column)."""
        return np.bincount(self.col_indices, minlength=self.n_cols).astype(INDEX_DTYPE)

    def row_slice(self, row: int) -> np.ndarray:
        """Column indices of one row (a view, not a copy)."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range for {self.n_rows} rows")
        return self.col_indices[self.row_offsets[row]: self.row_offsets[row + 1]]

    def row_values(self, row: int) -> np.ndarray:
        """Values of one row (a view, not a copy)."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range for {self.n_rows} rows")
        return self.values[self.row_offsets[row]: self.row_offsets[row + 1]]

    def has_sorted_rows(self) -> bool:
        """Whether column indices are ascending within every row."""
        for row in range(self.n_rows):
            cols = self.row_slice(row)
            if cols.size > 1 and np.any(np.diff(cols) < 0):
                return False
        return True

    def sort_rows(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        indices = self.col_indices.copy()
        values = self.values.copy()
        for row in range(self.n_rows):
            start = self.row_offsets[row]
            end = self.row_offsets[row + 1]
            order = np.argsort(indices[start:end], kind="stable")
            indices[start:end] = indices[start:end][order]
            values[start:end] = values[start:end][order]
        return CSRMatrix(self.n_rows, self.n_cols, self.row_offsets.copy(), indices, values)

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.row_offsets.copy(),
            self.col_indices.copy(),
            self.values.copy(),
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small matrices only)."""
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        for row in range(self.n_rows):
            np.add.at(dense[row], self.row_slice(row), self.row_values(row))
        return dense

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and bool(np.array_equal(self.row_offsets, other.row_offsets))
            and bool(np.array_equal(self.col_indices, other.col_indices))
            and bool(np.allclose(self.values, other.values))
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable container
        raise TypeError("CSRMatrix is not hashable")

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
