"""Coordinate-format (COO) sparse matrix container.

COO stores one ``(row, col, value)`` triple per non-zero.  It is the
natural output format of the graph generators and the input format for
CSR construction.  The container is intentionally minimal: it validates
its invariants on construction and exposes read-only views; all
non-trivial algorithms live in sibling modules.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import FormatError, ShapeError

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


def _as_index_array(name: str, data: object) -> np.ndarray:
    array = np.asarray(data)
    if array.ndim != 1:
        raise ShapeError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size and not np.issubdtype(array.dtype, np.integer):
        raise FormatError(f"{name} must hold integers, got dtype {array.dtype}")
    return array.astype(INDEX_DTYPE, copy=False)


def _as_value_array(name: str, data: object, length: int) -> np.ndarray:
    array = np.asarray(data, dtype=VALUE_DTYPE)
    if array.ndim != 1:
        raise ShapeError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size != length:
        raise ShapeError(
            f"{name} has {array.size} entries but the matrix has {length} non-zeros"
        )
    return array


class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.  Both must be non-negative.
    rows, cols:
        Per-non-zero row and column indices.  Must be equal-length,
        one-dimensional integer arrays with entries inside the matrix
        bounds.
    values:
        Optional per-non-zero values; defaults to all ones (the
        adjacency-matrix convention used throughout the paper).

    Duplicate ``(row, col)`` pairs are permitted; see
    :func:`repro.sparse.ops.merge_duplicates` to combine them.
    """

    __slots__ = ("n_rows", "n_cols", "rows", "cols", "values")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        rows: object,
        cols: object,
        values: object = None,
    ) -> None:
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"matrix dimensions must be non-negative, got {n_rows}x{n_cols}")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = _as_index_array("rows", rows)
        self.cols = _as_index_array("cols", cols)
        if self.rows.size != self.cols.size:
            raise ShapeError(
                f"rows ({self.rows.size}) and cols ({self.cols.size}) differ in length"
            )
        if values is None:
            self.values = np.ones(self.rows.size, dtype=VALUE_DTYPE)
        else:
            self.values = _as_value_array("values", values, self.rows.size)
        self._check_bounds()

    def _check_bounds(self) -> None:
        if self.rows.size == 0:
            return
        if self.rows.min() < 0 or self.rows.max() >= self.n_rows:
            raise FormatError(
                f"row indices out of bounds for {self.n_rows} rows: "
                f"[{self.rows.min()}, {self.rows.max()}]"
            )
        if self.cols.min() < 0 or self.cols.max() >= self.n_cols:
            raise FormatError(
                f"column indices out of bounds for {self.n_cols} cols: "
                f"[{self.cols.min()}, {self.cols.max()}]"
            )

    @property
    def nnz(self) -> int:
        """Number of stored entries (including any duplicates)."""
        return int(self.rows.size)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def copy(self) -> "COOMatrix":
        return COOMatrix(
            self.n_rows,
            self.n_cols,
            self.rows.copy(),
            self.cols.copy(),
            self.values.copy(),
        )

    def triples(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(row, col, value)`` triples (test/debug aid)."""
        for r, c, v in zip(self.rows, self.cols, self.values):
            yield int(r), int(c), float(v)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small matrices only)."""
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        order_a = np.lexsort((self.cols, self.rows))
        order_b = np.lexsort((other.cols, other.rows))
        return (
            bool(np.array_equal(self.rows[order_a], other.rows[order_b]))
            and bool(np.array_equal(self.cols[order_a], other.cols[order_b]))
            and bool(np.allclose(self.values[order_a], other.values[order_b]))
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable container
        raise TypeError("COOMatrix is not hashable")

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
