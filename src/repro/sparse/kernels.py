"""Reference sparse linear-algebra kernels.

These are numerically faithful implementations of the kernels whose
memory behaviour the paper studies: SpMV with the matrix in CSR or COO
format and SpMM (sparse matrix times dense matrix) with the matrix in
CSR format.  The corresponding *memory traces* (what the cache
simulator consumes) are produced separately by :mod:`repro.trace`,
which mirrors the exact array walk these kernels perform.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def spmv_csr(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` with ``A`` in CSR format (Algorithm 1 of the paper)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(
            f"input vector has shape {x.shape}, expected ({matrix.n_cols},)"
        )
    y = np.zeros(matrix.n_rows, dtype=np.float64)
    gathered = matrix.values * x[matrix.col_indices]
    np.add.at(y, _row_ids(matrix), gathered)
    return y


def spmv_coo(matrix: COOMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` with ``A`` in COO format."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(
            f"input vector has shape {x.shape}, expected ({matrix.n_cols},)"
        )
    y = np.zeros(matrix.n_rows, dtype=np.float64)
    np.add.at(y, matrix.rows, matrix.values * x[matrix.cols])
    return y


def spmm_csr(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """``Y = A @ B`` with ``A`` in CSR and ``B`` a dense ``n_cols x k`` matrix."""
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != matrix.n_cols:
        raise ShapeError(
            f"dense operand has shape {dense.shape}, expected ({matrix.n_cols}, k)"
        )
    out = np.zeros((matrix.n_rows, dense.shape[1]), dtype=np.float64)
    gathered = matrix.values[:, None] * dense[matrix.col_indices]
    np.add.at(out, _row_ids(matrix), gathered)
    return out


def spmv_csr_tiled(matrix: CSRMatrix, x: np.ndarray, n_tiles: int) -> np.ndarray:
    """``y = A @ x`` computed tile by tile over column ranges.

    Numerically equivalent to :func:`spmv_csr` (floating-point
    accumulation order aside); exists to validate that the tiled
    execution model traced by :mod:`repro.trace.tiled` computes the
    same result.
    """
    if n_tiles < 1:
        raise ValueError(f"n_tiles must be >= 1, got {n_tiles}")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(
            f"input vector has shape {x.shape}, expected ({matrix.n_cols},)"
        )
    y = np.zeros(matrix.n_rows, dtype=np.float64)
    tile_width = -(-matrix.n_cols // n_tiles)
    row_ids = _row_ids(matrix)
    tile_of_entry = matrix.col_indices // tile_width
    for tile in range(n_tiles):
        inside = tile_of_entry == tile
        if not inside.any():
            continue
        np.add.at(
            y,
            row_ids[inside],
            matrix.values[inside] * x[matrix.col_indices[inside]],
        )
    return y


def _row_ids(matrix: CSRMatrix) -> np.ndarray:
    """Per-non-zero row index of a CSR matrix."""
    return np.repeat(np.arange(matrix.n_rows), np.diff(matrix.row_offsets))
