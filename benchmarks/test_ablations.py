"""Ablation benches (DESIGN.md Section 7 extensions).

* Cache-capacity sensitivity: the RANDOM-vs-RABBIT++ gap peaks in the
  mid-capacity regime and collapses once everything fits.
* Schedule ablation: interleaving rows across partitions raises
  absolute traffic but preserves the ordering ranking.
"""

from conftest import PROFILE, emit

from repro.experiments import (
    hierarchy_ablation,
    schedule_ablation,
    sensitivity,
    tiling,
)


def test_ablation_cache_sensitivity(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: sensitivity.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert report.summary["gap_at_largest"] < report.summary["max_gap"]
    assert report.summary["gap_at_largest"] < 1.1


def test_ablation_schedule(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: schedule_ablation.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    for schedule in ("sequential", "interleaved"):
        assert (
            summary[f"mean_rabbit++_{schedule}"]
            <= summary[f"mean_random_{schedule}"] + 1e-9
        )


def test_ablation_hierarchy(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: hierarchy_ablation.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    # Community orderings beat RANDOM at the L1; the hierarchical
    # (RABBIT) ordering at least matches the flat (LOUVAIN) one.
    assert summary["mean_l1_hit_rabbit"] > summary["mean_l1_hit_random"]
    assert summary["mean_l1_hit_rabbit"] >= summary["mean_l1_hit_louvain"] - 0.02


def test_ablation_tiling(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: tiling.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    # Tiling buys RANDOM much larger traffic reductions than RABBIT++
    # (whose working set is already cache-shaped).
    assert summary["tiling_gain_random"] > summary["tiling_gain_rabbit++"]
    # Both curves are U-shaped: the per-tile streaming overhead
    # eventually overwhelms the locality gain.
    rows = report.rows
    assert rows[-1][1] > min(row[1] for row in rows)  # random curve
    assert rows[-1][2] > min(row[2] for row in rows)  # rabbit++ curve
    # The combination is never worse than tiling alone: at every tile
    # count the RABBIT++-ordered matrix moves fewer bytes.
    for row in rows:
        assert row[2] <= row[1] + 1e-9
