"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact on the ``bench`` corpus
profile (reduced scale; see DESIGN.md) and prints the regenerated rows
next to the paper's published numbers.  Results are memoized under
``.repro_cache/``, so the first invocation does the simulation work and
subsequent runs replay from cache.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner

PROFILE = "bench"


@pytest.fixture(scope="session")
def bench_runner() -> ExperimentRunner:
    return ExperimentRunner(profile=PROFILE)


def emit(report) -> None:
    """Print a regenerated artifact (visible with pytest -s)."""
    print()
    print(report.to_text())
