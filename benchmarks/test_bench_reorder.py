"""Benchmark-harness entry for the reordering engines (BENCH_reorder.json).

Times the reference and vectorized reordering engines — RABBIT
detection plus every fast-path technique end-to-end — on the seeded
smoke workload, asserts the implementations produce identical outputs,
and writes the throughput comparison to ``BENCH_reorder.json``
(override the location with ``REPRO_BENCH_REORDER_OUT``).  The
full-size comparison — detection on the scale-16 ``soc-rmat`` corpus
matrix — runs via ``repro bench-reorder`` without ``--smoke``.

The smoke graphs sit below the ``impl="auto"`` payoff size, so no
speedup floor is asserted here; the smoke run checks schema and
correctness, the full run checks performance.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.reorder.benchreorder import (
    BENCH_TECHNIQUES,
    DETECT_ROW,
    build_bench_graphs,
    run_bench,
)

OUT_ENV_VAR = "REPRO_BENCH_REORDER_OUT"


@pytest.fixture(scope="module")
def graphs():
    return build_bench_graphs(smoke=True)


def test_bench_reorder_smoke(graphs):
    detect_graph, technique_graph = graphs
    payload = run_bench(detect_graph, technique_graph, repeats=1)

    assert payload["results_match"] is True
    rows = {(r["name"], r["impl"]) for r in payload["results"]}
    expected_names = (DETECT_ROW,) + BENCH_TECHNIQUES
    assert rows == {
        (name, impl) for name in expected_names for impl in ("reference", "fast")
    }
    assert all(r["nodes_per_s"] > 0 for r in payload["results"])
    assert set(payload["speedups"]) == set(expected_names)
    assert payload["workloads"]["detection"]["n_nodes"] == detect_graph.n_nodes

    out_path = os.environ.get(OUT_ENV_VAR, "BENCH_reorder.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)

    print()
    print(f"wrote {out_path}")
    for result in payload["results"]:
        print(
            f"{result['name']:13s} {result['impl']:10s} "
            f"{result['nodes_per_s']:,.0f} nodes/s"
        )
    for name, speedup in payload["speedups"].items():
        print(f"{name}: fast = {speedup:.1f}x reference")
