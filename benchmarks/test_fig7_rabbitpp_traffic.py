"""Figure 7: DRAM-traffic reduction of RABBIT++ over RABBIT.

Shape expectations: RABBIT++ at least matches RABBIT on average, with
the gains concentrated on low-insularity matrices (paper: 7.7% mean
there, up to 1.56x).
"""

from conftest import PROFILE, emit

from repro.experiments import fig7


def test_fig7_rabbitpp_traffic(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig7.run(profile=PROFILE, runner=bench_runner, split=0.7),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    assert summary["mean_traffic_reduction_all"] > 0.98
    assert summary["max_traffic_reduction"] > 1.0
    if "mean_traffic_reduction_low_ins" in summary:
        assert (
            summary["mean_traffic_reduction_low_ins"]
            >= summary["mean_traffic_reduction_all"] - 0.02
        )
