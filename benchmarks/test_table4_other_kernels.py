"""Table IV: run time normalized to ideal across other kernels.

Shape expectations: for every kernel (SpMV-COO, SpMM-CSR-4,
SpMM-CSR-256), RANDOM is worst and the community orderings improve on
it, with RABBIT++ at least matching RABBIT overall.
"""

from conftest import PROFILE, emit

from repro.experiments import table4


def test_table4_other_kernels(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: table4.run(profile=PROFILE, runner=bench_runner, split=0.7),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    for kernel in ("spmv-coo", "spmm-csr-4", "spmm-csr-256"):
        random_all = summary[f"{kernel}|random|all"]
        rabbit_all = summary[f"{kernel}|rabbit|all"]
        rabbitpp_all = summary[f"{kernel}|rabbit++|all"]
        assert rabbit_all < random_all, kernel
        assert rabbitpp_all < random_all, kernel
        assert rabbitpp_all <= rabbit_all * 1.3, kernel
