"""Figure 3: RABBIT run time vs. insularity.

Shape expectation: high-insularity matrices land much closer to ideal
than low-insularity ones (paper: 1.26x vs 1.81x).
"""

from conftest import PROFILE, emit

from repro.experiments import fig3


def test_fig3_insularity(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig3.run(profile=PROFILE, runner=bench_runner, split=0.7),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    if "mean_runtime_high_insularity" in summary and "mean_runtime_low_insularity" in summary:
        assert (
            summary["mean_runtime_high_insularity"]
            < summary["mean_runtime_low_insularity"]
        )
    # Rows are sorted by insularity (the figure's x-axis).
    insularities = [row[1] for row in report.rows]
    assert insularities == sorted(insularities)
