"""Table III: average dead-line percentage per ordering.

Shape expectations: RANDOM wastes by far the most cache capacity;
RABBIT++ the least (paper: 63.3% vs 16.4%).
"""

from conftest import PROFILE, emit

from repro.experiments import table3


def test_table3_dead_lines(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: table3.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    dead = report.summary
    assert dead["dead_fraction_random"] == max(dead.values())
    assert dead["dead_fraction_rabbit++"] <= dead["dead_fraction_rabbit"]
    assert dead["dead_fraction_rabbit++"] < dead["dead_fraction_random"] / 1.5
