"""Table I: platform specifications (trivially fast; included so every
paper artifact has a bench target)."""

from conftest import PROFILE, emit

from repro.experiments import table1


def test_table1_specs(benchmark, bench_runner):
    report = benchmark(lambda: table1.run(profile=PROFILE))
    emit(report)
    assert report.summary["l2_scale_factor"] > 1
