"""Table II: the RABBIT-modification design space.

Shape expectations vs. the paper: insular grouping helps (columns),
HUBSORT hurts relative to HUBGROUP (rows), and the full RABBIT++
(HUBGROUP + insular) is the best ALL-matrices cell.
"""

from conftest import PROFILE, emit

from repro.experiments import table2

SPLIT = 0.7


def test_table2_design_space(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: table2.run(profile=PROFILE, runner=bench_runner, split=SPLIT),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    # Insular grouping never hurts the ALL mean for the RABBIT row.
    assert (
        summary["RABBIT|with-insular|all"]
        <= summary["RABBIT|without-insular|all"] + 0.02
    )
    # HUBGROUP beats HUBSORT (hub community structure preserved).
    assert (
        summary["RABBIT+HUBGROUP|with-insular|all"]
        <= summary["RABBIT+HUBSORT|with-insular|all"] + 0.02
    )
    # The paper's RABBIT++ cell is the best (or ties within noise).
    best = min(value for key, value in summary.items() if key.endswith("|all"))
    assert summary["RABBIT+HUBGROUP|with-insular|all"] <= best + 0.05
