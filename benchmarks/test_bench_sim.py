"""Benchmark-harness entry for the simulator engines (BENCH_sim.json).

Times the reference and vectorized cache simulators on the seeded
``bench-sim`` smoke workload, asserts the two implementations return
identical ``CacheStats``, and writes the throughput comparison to
``BENCH_sim.json`` (override the location with ``REPRO_BENCH_SIM_OUT``).
The full-size comparison — the paper-faithful A6000 L2 geometry —
runs via ``repro bench-sim`` without ``--smoke``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cache.benchsim import build_bench_workload, run_bench

OUT_ENV_VAR = "REPRO_BENCH_SIM_OUT"


@pytest.fixture(scope="module")
def workload():
    return build_bench_workload(smoke=True)


def test_bench_sim_smoke(workload):
    trace, config = workload
    payload = run_bench(trace, config, repeats=1)

    assert payload["stats_match"] is True
    impls = {(r["policy"], r["impl"]) for r in payload["results"]}
    assert impls == {
        ("lru", "reference"),
        ("lru", "fast"),
        ("belady", "reference"),
        ("belady", "fast"),
    }
    assert all(r["accesses_per_s"] > 0 for r in payload["results"])
    assert set(payload["speedups"]) == {"lru", "belady"}

    out_path = os.environ.get(OUT_ENV_VAR, "BENCH_sim.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)

    print()
    print(f"wrote {out_path}")
    for result in payload["results"]:
        print(
            f"{result['policy']:7s} {result['impl']:10s} "
            f"{result['accesses_per_s']:,.0f} accesses/s"
        )
    for policy, speedup in payload["speedups"].items():
        print(f"{policy}: fast = {speedup:.1f}x reference")
