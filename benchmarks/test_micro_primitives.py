"""Microbenchmarks of the library's computational primitives.

These time the individual pipeline stages (trace generation, LRU and
Belady simulation, community detection, reordering, SpMV) so
performance regressions in the substrate are visible independently of
the artifact-level experiments.
"""

import numpy as np
import pytest

from repro.cache import simulate
from repro.community.rabbit import rabbit_communities
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import load_graph
from repro.reorder.registry import make_technique
from repro.sparse.kernels import spmv_csr
from repro.sparse.permute import permute_symmetric
from repro.trace.kernel_traces import spmv_csr_trace

MATRIX = "bench-comm"


@pytest.fixture(scope="module")
def graph():
    return load_graph(MATRIX)


@pytest.fixture(scope="module")
def trace(graph):
    return spmv_csr_trace(graph.adjacency, line_bytes=32)


def test_trace_generation(benchmark, graph):
    trace = benchmark(lambda: spmv_csr_trace(graph.adjacency, line_bytes=32))
    assert trace.n_accesses > 0


def test_lru_simulation(benchmark, trace):
    config = scaled_platform("bench").cache_config()
    stats = benchmark(lambda: simulate(trace.lines, config, policy="lru", impl="reference"))
    assert stats.accesses == trace.n_accesses


def test_lru_simulation_fast(benchmark, trace):
    config = scaled_platform("bench").cache_config()
    stats = benchmark(lambda: simulate(trace.lines, config, policy="lru", impl="fast"))
    assert stats.accesses == trace.n_accesses


def test_belady_simulation(benchmark, trace):
    config = scaled_platform("bench").cache_config()
    stats = benchmark(lambda: simulate(trace.lines, config, policy="belady", impl="reference"))
    assert stats.accesses == trace.n_accesses


def test_belady_simulation_fast(benchmark, trace):
    config = scaled_platform("bench").cache_config()
    stats = benchmark(lambda: simulate(trace.lines, config, policy="belady", impl="fast"))
    assert stats.accesses == trace.n_accesses


def test_rabbit_detection(benchmark, graph):
    result = benchmark(lambda: rabbit_communities(graph))
    assert result.assignment.n_communities >= 1


def test_rabbitpp_reordering(benchmark, graph):
    technique = make_technique("rabbit++")
    perm = benchmark(lambda: make_technique("rabbit++").compute(graph))
    assert perm.size == graph.n_nodes


def test_symmetric_permutation(benchmark, graph):
    perm = make_technique("random").compute(graph)
    out = benchmark(lambda: permute_symmetric(graph.adjacency, perm))
    assert out.nnz == graph.adjacency.nnz


def test_spmv_kernel(benchmark, graph):
    x = np.ones(graph.n_nodes)
    y = benchmark(lambda: spmv_csr(graph.adjacency, x))
    assert y.size == graph.n_nodes
