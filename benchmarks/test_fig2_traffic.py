"""Figure 2: SpMV DRAM traffic (normalized to compulsory) per ordering.

Shape expectations vs. the paper: RANDOM worst by a wide margin,
RABBIT and GORDER best, ORIGINAL in between and highly variable.
"""

from conftest import PROFILE, emit

from repro.experiments import fig2


def test_fig2_traffic(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig2.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    # Who wins: RABBIT must beat the degree-based techniques and RANDOM.
    assert summary["mean_traffic_rabbit"] < summary["mean_traffic_degsort"]
    assert summary["mean_traffic_rabbit"] < summary["mean_traffic_random"]
    # Rough factor: RANDOM should be >= 1.5x RABBIT's traffic.
    assert summary["mean_traffic_random"] > 1.5 * summary["mean_traffic_rabbit"]
    # Run-time ratios exceed traffic ratios (irregular-access penalty).
    assert summary["mean_runtime_random"] > summary["mean_traffic_random"]
