"""Benchmark: predictor-backed recommend vs brute-force evaluation.

The PR 7 serve tier answered ``technique: "auto"`` by evaluating every
candidate: one reordering + one trace + one cache simulation per
candidate plus the baseline.  The predictor path answers the same
question from structural features — one community detection, a few dot
products, zero candidate reorderings.  This bench times both on a
scale-13 RMAT matrix (outside the corpus, so nothing is pre-cached)
and asserts the acceptance criteria:

* the predicted recommendation is at least 5x faster than the
  brute-force sweep it replaces;
* the ``serve.compute.*`` counters confirm the predict path computed
  zero permutations and zero evaluations.
"""

from __future__ import annotations

import time

from repro import obs
from repro.graphs.generators.powerlaw import rmat
from repro.graphs.graph import Graph
from repro.obs import Instrumentation
from repro.serve.service import BASELINE_TECHNIQUE, ReorderService, ServeConfig
from repro.serve.store import structure_digest
from repro.sparse.convert import coo_to_csr

#: Acceptance floor from ISSUE 8.
MIN_SPEEDUP = 5.0

SCALE = 13
KERNEL = "spmv-csr"


def test_bench_recommend_beats_brute_force(tmp_path):
    graph = Graph(coo_to_csr(rmat(scale=SCALE, edge_factor=8, seed=3, directed=False)))
    digest = structure_digest(graph.adjacency)
    instr = Instrumentation(enabled=True)
    with obs.using(instr):
        service = ReorderService(
            ServeConfig(profile="bench", store_dir=str(tmp_path / "store"))
        )

        # Predicted path (cold: includes the one community detection
        # plus the pretrained-coefficient load).
        started = time.perf_counter()
        chosen, recommendation = service._recommend(graph, digest, KERNEL, 100)
        predicted_seconds = time.perf_counter() - started
        assert recommendation["predicted"] is True
        assert instr.counters.get("serve.compute.eval") == 0
        assert instr.counters.get("serve.compute.permutation") == 0

        # Brute-force path the predictor replaced: evaluate the baseline
        # and every candidate (PR 7's _recommend).
        started = time.perf_counter()
        for technique in (BASELINE_TECHNIQUE,) + service.config.candidates:
            service._evaluate(graph, digest, technique, KERNEL, "lru")
        brute_seconds = time.perf_counter() - started
        n_candidates = len(service.config.candidates)
        assert instr.counters.get("serve.compute.eval") == n_candidates + 1
        assert instr.counters.get("serve.compute.permutation") == n_candidates + 1

    speedup = brute_seconds / predicted_seconds
    print(
        f"\nrecommend bench (scale-{SCALE} rmat, {graph.adjacency.nnz} nnz): "
        f"predicted {predicted_seconds * 1e3:.0f} ms vs brute "
        f"{brute_seconds * 1e3:.0f} ms -> {speedup:.1f}x (chosen: {chosen})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"predicted recommend only {speedup:.1f}x faster than brute force"
    )
