"""Figure 8: LRU vs. Belady DRAM traffic per ordering.

Shape expectations: Belady always at or below LRU, and the gap shrinks
as the ordering improves, smallest for RABBIT++ (paper: 7.6%).
"""

from conftest import PROFILE, emit

from repro.experiments import fig8


def test_fig8_belady_headroom(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig8.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    summary = report.summary
    for key, gap in summary.items():
        assert gap >= 1.0 - 1e-9, key
    assert summary["lru_over_belady_rabbit++"] <= summary["lru_over_belady_random"]
    assert summary["lru_over_belady_rabbit++"] == min(summary.values())
