"""Figure 9: reordering cost vs. matrix size and amortization.

Shape expectations: GORDER's pre-processing cost dominates RABBIT's
and RABBIT++'s at every size and grows at least as fast; RABBIT++ adds
only a modest overhead over RABBIT.  Absolute amortization-iteration
counts are inflated by the pure-Python reordering substrate (see the
driver docstring); the ordering between techniques is the signal.
"""

from conftest import PROFILE, emit

from repro.experiments import fig9


def test_fig9_preprocessing_cost(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig9.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    for row in report.rows:
        n, nnz, gorder_sec, _, rabbit_sec, _, rabbitpp_sec, _ = row
        assert gorder_sec > rabbit_sec
        assert gorder_sec > rabbitpp_sec
    summary = report.summary
    if (
        "amortization_iterations_gorder" in summary
        and "amortization_iterations_rabbit" in summary
    ):
        assert (
            summary["amortization_iterations_gorder"]
            > summary["amortization_iterations_rabbit"]
        )
