"""Figure 4: insular-node percentage per matrix.

Shape expectation: high-insularity matrices are almost entirely
insular; even low-insularity matrices retain a substantial insular
fraction (the motivation for RABBIT++'s first modification).
"""

from conftest import PROFILE, emit

from repro.experiments import fig4


def test_fig4_insular_nodes(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig4.run(profile=PROFILE, runner=bench_runner, split=0.7),
        rounds=1,
        iterations=1,
    )
    emit(report)
    for row in report.rows:
        assert 0.0 <= row[2] <= 1.0
    if "mean_insular_fraction_high_ins" in report.summary:
        assert report.summary["mean_insular_fraction_high_ins"] > 0.5
