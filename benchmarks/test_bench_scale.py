"""Scale-out bench: schema, jobs-invariance, and BOBA traffic quality.

The scale-out path (``repro bench-reorder --scale N``) is exercised
here at a small scale so the harness stays fast; the real scale-18 run
is the CI scale-smoke job and manual invocations.  Two contracts:

* the scale payload is deterministic — ``--jobs 1`` and ``--jobs 2``
  produce byte-identical community labels and permutations (sha256);
* BOBA's DRAM-traffic reduction stays within 10% of RABBIT's on the
  skewed bench matrices.  Community-structured graphs (``bench-comm``,
  ``bench-web``) are deliberately excluded: they are RABBIT's home
  turf, where hierarchical merging beats degree-bucket placement by
  design (measured ratios ~0.33/0.49), while on skewed graphs BOBA
  matches or wins (measured 1.00/3.07/1.27).
"""

from __future__ import annotations

import pytest

from conftest import PROFILE
from repro.reorder.benchreorder import run_scale_bench

#: Skew-dominated matrices where degree-bucket placement is competitive.
SKEWED_MATRICES = ("bench-social", "bench-rmat", "bench-scalefree")

#: Traffic baseline for computing reductions.
BASELINE = "random"


@pytest.fixture(scope="module")
def scale_payloads(tmp_path_factory):
    import os

    cache = tmp_path_factory.mktemp("scale-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    try:
        serial = run_scale_bench(
            scale=10, edge_factor=8, seed=7, n_shards=2, jobs=1
        )
        pooled = run_scale_bench(
            scale=10, edge_factor=8, seed=7, n_shards=2, jobs=2
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous
    return serial, pooled


def test_scale_payload_schema(scale_payloads):
    serial, _ = scale_payloads
    assert serial["mode"] == "scale"
    workload = serial["workload"]
    assert workload["n_nodes"] == 1 << 10
    assert workload["memmap"] is True
    detection = serial["detection"]
    assert detection["single"]["nodes_per_s"] > 0
    assert detection["sharded"]["nodes_per_s"] > 0
    assert detection["sharded"]["n_shards"] == 2
    assert detection["sharded_speedup"] > 0
    names = [row["name"] for row in serial["techniques"]]
    assert names == ["rabbit", "boba", "dbg"]
    assert all(row["nodes_per_s"] > 0 for row in serial["techniques"])
    assert serial["rss_peak_kb"]["overall"] > 0


def test_scale_payload_jobs_invariant(scale_payloads):
    serial, pooled = scale_payloads
    assert (
        serial["detection"]["sharded"]["labels_sha256"]
        == pooled["detection"]["sharded"]["labels_sha256"]
    )
    serial_perms = {r["name"]: r["permutation_sha256"] for r in serial["techniques"]}
    pooled_perms = {r["name"]: r["permutation_sha256"] for r in pooled["techniques"]}
    assert serial_perms == pooled_perms


def test_boba_traffic_within_ten_percent_of_rabbit(bench_runner):
    assert bench_runner.profile == PROFILE
    for matrix in SKEWED_MATRICES:
        baseline = bench_runner.run(matrix, BASELINE).normalized_traffic
        rabbit = bench_runner.run(matrix, "rabbit").normalized_traffic
        boba = bench_runner.run(matrix, "boba").normalized_traffic
        red_rabbit = baseline - rabbit
        red_boba = baseline - boba
        assert red_rabbit > 0, matrix
        assert red_boba >= 0.9 * red_rabbit, (
            f"{matrix}: boba reduction {red_boba:.3f} < 90% of "
            f"rabbit's {red_rabbit:.3f}"
        )
