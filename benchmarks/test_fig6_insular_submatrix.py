"""Figure 6: DRAM traffic of the insular sub-matrix.

Shape expectation: once insular nodes are grouped, the insular portion
of every matrix achieves near-compulsory traffic (paper plots values
hugging 1.0).
"""

from conftest import PROFILE, emit

from repro.experiments import fig6


def test_fig6_insular_submatrix(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: fig6.run(profile=PROFILE, runner=bench_runner),
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert report.summary["mean_insular_submatrix_traffic"] < 1.35
