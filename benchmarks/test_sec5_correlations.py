"""Section V-B: Pearson correlations between insularity, skew and
community size.

Shape expectations: both correlations negative (paper: −0.721 for
skew, −0.472 for normalized community size), and low-insularity
matrices carry much higher skew.
"""

from conftest import PROFILE, emit

from repro.experiments import correlations


def test_sec5_correlations(benchmark, bench_runner):
    report = benchmark.pedantic(
        lambda: correlations.run(profile=PROFILE, runner=bench_runner, split=0.7),
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert report.summary["pearson_insularity_skew"] < -0.2
    # The community-size correlation does NOT reproduce at this scale:
    # modularity detectors have a resolution floor (k ~ sqrt(edges)),
    # so at 4k nodes community sizes barely vary with insularity.  The
    # measured value is recorded in EXPERIMENTS.md as a documented
    # divergence; here we only pin it to a sane range.
    if "pearson_insularity_commsize" in report.summary:
        assert -1.0 <= report.summary["pearson_insularity_commsize"] <= 1.0
    if (
        "mean_skew_high_insularity" in report.summary
        and "mean_skew_low_insularity" in report.summary
    ):
        assert (
            report.summary["mean_skew_low_insularity"]
            > report.summary["mean_skew_high_insularity"]
        )
