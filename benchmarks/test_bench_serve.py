"""Benchmark-harness entry for the serve tier (BENCH_serve.json).

Spawns a private ``repro serve`` on a free port with a fresh store,
replays a zipf-skewed trace against it through the real CLI/bench
path (subprocess + sockets, exactly what CI's serve-smoke job runs),
and asserts the serving story holds:

* the run completes with zero transport errors,
* repeat traffic hits the content-addressed store (hit rate > 0 —
  guaranteed by replaying more requests than there are matrices),
* the hit path is at least 10x faster than the miss path at p50
  (the permutation + simulation pipeline amortized away),
* ``BENCH_serve.json`` is written with the latency/hit-rate schema
  EXPERIMENTS.md documents (override the location with
  ``REPRO_BENCH_SERVE_OUT``).

The smoke run uses the ``test`` corpus profile so it takes seconds;
point ``--profile bench`` at a long-lived server for the full-scale
numbers.
"""

from __future__ import annotations

import json
import os

from repro.serve.bench import run_bench

OUT_ENV_VAR = "REPRO_BENCH_SERVE_OUT"

#: Acceptance floor: a store hit must be at least this much faster than
#: the full reorder+simulate miss path at p50.
MIN_HIT_SPEEDUP = 10.0


def test_bench_serve_smoke(tmp_path):
    payload = run_bench(
        profile="test",
        n_requests=36,
        concurrency=4,
        skew=1.1,
        seed=0,
        technique="rabbit++",
        store_dir=str(tmp_path / "store"),
    )
    assert payload["schema"] == 2
    assert payload["requests"]["errors"] == {}
    total = payload["requests"]["total"]
    assert total == 36
    # 6 test matrices, 36 requests: at least 30 repeats must have hit
    # (or coalesced into) previously computed entries.
    assert payload["store_hit_rate"] > 0.0
    hits = payload["client"]["hit"]["count"]
    coalesced = payload["client"]["coalesced"]["count"]
    misses = payload["client"]["miss"]["count"]
    assert hits + coalesced + misses == total
    assert misses <= 6  # one true compute per distinct matrix
    assert payload["client"]["overall"]["p50"] is not None
    assert payload["client"]["overall"]["p99"] is not None
    # Client-side speedup includes socket overhead on the hit path, so
    # the 10x acceptance floor is asserted on the server-side split;
    # the client-side number still has to show a clear win.
    client_speedup = payload["hit_speedup_p50"]
    assert client_speedup is not None and client_speedup > 2.0
    speedup = payload["hit_speedup_p50_server"]
    assert speedup is not None and speedup >= MIN_HIT_SPEEDUP, (
        f"store hit path only {speedup}x faster than miss path"
    )
    # The server-side view made it into the payload.
    server = payload["server"]
    assert server["service"]["store"]["perm"]["entries"] >= 1
    assert server["counters"]["serve.request.miss"] >= 1

    out_path = os.environ.get(OUT_ENV_VAR, "BENCH_serve.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    print(
        f"\nserve bench: {total} requests, hit rate "
        f"{payload['store_hit_rate']:.1%}, hit p50 speedup {speedup:.1f}x "
        f"-> {out_path}"
    )
